// End-to-end socket tests for the serving tier (server/server.h): real
// TCP connections against an in-process TuningServer on an ephemeral
// localhost port.  Covers the handshake, the byte-identity contract
// (wire RESULT == encoded in-process ServiceCore answer), pipelined
// response ordering, per-tenant admission shed on the wire, the fatal
// path for malformed frames, the JSON debug mode over a raw socket, and
// graceful drain shutdown.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/server.h"
#include "service/core.h"
#include "service/resilience.h"

namespace edb::server {
namespace {

// Small eval budgets keep every solve in test time; identical options on
// the in-process reference core keep the bits comparable.
service::TuningQuery test_query(double l_max,
                                std::vector<std::string> protocols = {
                                    "X-MAC"}) {
  service::TuningQuery q;
  q.scenario = core::Scenario::paper_default();
  q.scenario.requirements.l_max = l_max;
  q.protocols = std::move(protocols);
  return q;
}

ServerOptions test_options(int workers = 1) {
  ServerOptions opts;
  opts.workers = workers;
  opts.engine.threads = 2;
  opts.engine.parallel = true;
  return opts;
}

service::CoreOptions reference_options(const ServerOptions& s) {
  service::CoreOptions opts;
  opts.engine = s.engine;
  opts.cache_capacity = s.cache_capacity;
  opts.cache_shards = s.cache_shards;
  return opts;
}

std::uint64_t counter_value(const char* name) {
  return obs::Registry::global().counter(name).value();
}

TEST(ServerSocket, ServesOneQueryBitIdenticalToInProcessCore) {
  const ServerOptions opts = test_options(1);
  TuningServer srv(opts);
  auto started = srv.start();
  ASSERT_TRUE(started.ok()) << started.error().to_string();

  WireClient client;
  auto connected = client.connect("127.0.0.1", srv.port());
  ASSERT_TRUE(connected.ok()) << connected.error().to_string();

  const service::TuningQuery q = test_query(4.0);
  client.queue_query(q, 7);
  ASSERT_TRUE(client.flush().ok());
  auto resp = client.next_response();
  ASSERT_TRUE(resp.ok()) << resp.error().to_string();
  EXPECT_EQ(resp->seq, 7u);
  ASSERT_TRUE(resp->result.has_value());

  // The wire frame must be byte-identical to encoding the answer of a
  // fresh transport-free core over the same query.
  service::ServiceCore core(reference_options(opts));
  const auto reference = core.serve({q});
  ASSERT_EQ(reference.size(), 1u);
  ASSERT_TRUE(reference[0].ok());
  EXPECT_EQ(resp->raw, encode_response(reference[0], 7));

  const auto stats = srv.stats();
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  srv.shutdown(/*drain=*/true);
}

TEST(ServerSocket, PipelinedResponsesKeepRequestOrderAcrossWorkers) {
  const ServerOptions opts = test_options(4);
  TuningServer srv(opts);
  ASSERT_TRUE(srv.start().ok());

  // Two distinct questions alternating; the response stream must come
  // back seq 0,1,2,... regardless of worker count or batch splits.
  std::vector<service::TuningQuery> queries;
  for (int i = 0; i < 10; ++i) {
    queries.push_back(test_query(i % 2 ? 3.0 : 5.0));
  }

  WireClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", srv.port()).ok());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    client.queue_query(queries[i], i);
  }
  ASSERT_TRUE(client.flush().ok());

  service::ServiceCore core(reference_options(opts));
  const auto reference = core.serve(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto resp = client.next_response();
    ASSERT_TRUE(resp.ok()) << resp.error().to_string();
    EXPECT_EQ(resp->seq, i) << "responses out of order";
    EXPECT_EQ(resp->raw, encode_response(reference[i], i));
  }
  srv.shutdown(/*drain=*/true);

  // The serve queue depth gauge saw the pipelined burst (high watermark
  // is process-wide, so only monotonicity is checkable here).
  EXPECT_GE(obs::Registry::global().gauge("service.queue.depth").max(), 1);
}

TEST(ServerSocket, PerTenantLimitShedsOnTheWire) {
  ServerOptions opts = test_options(1);
  service::TenantLimit limit;
  limit.tenant = "noisy";
  limit.qps = 1e-9;  // effectively: the burst and nothing more
  limit.burst = 1;
  opts.resilience.tenant_limits.push_back(limit);
  TuningServer srv(opts);
  ASSERT_TRUE(srv.start().ok());

  const std::uint64_t shed_before = counter_value("service.shed.noisy");

  WireClient noisy;
  ASSERT_TRUE(noisy.connect("127.0.0.1", srv.port(), "noisy").ok());
  auto first = noisy.query(test_query(4.0), 1);
  ASSERT_TRUE(first.ok()) << first.error().to_string();

  // Second query from the limited tenant: non-fatal shed ERROR, the
  // connection survives.
  noisy.queue_query(test_query(5.0), 2);
  ASSERT_TRUE(noisy.flush().ok());
  auto resp = noisy.next_response();
  ASSERT_TRUE(resp.ok()) << resp.error().to_string();
  EXPECT_EQ(resp->seq, 2u);
  ASSERT_TRUE(resp->error.has_value());
  EXPECT_EQ(resp->error->code, ErrorCode::kResourceExhausted);
  EXPECT_FALSE(resp->error->fatal);
  EXPECT_TRUE(noisy.connected());

  // An unlimited tenant on the same server is unaffected.
  WireClient calm;
  ASSERT_TRUE(calm.connect("127.0.0.1", srv.port(), "calm").ok());
  auto ok = calm.query(test_query(5.0), 3);
  EXPECT_TRUE(ok.ok());

  EXPECT_GE(counter_value("service.shed.noisy"), shed_before + 1);
  EXPECT_EQ(srv.stats().shed, 1u);
  srv.shutdown(/*drain=*/true);
}

TEST(ServerSocket, MalformedFrameGetsFatalErrorAndClose) {
  TuningServer srv(test_options(1));
  ASSERT_TRUE(srv.start().ok());

  WireClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", srv.port()).ok());

  // A frame whose len cannot hold type+seq: fatal protocol violation.
  const unsigned char garbage[] = {0x03, 0x00, 0x00, 0x00, 0xaa, 0xbb,
                                   0xcc};
  ASSERT_EQ(::send(client.fd(), garbage, sizeof garbage, MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof garbage));

  auto resp = client.next_response();
  ASSERT_TRUE(resp.ok()) << resp.error().to_string();
  ASSERT_TRUE(resp->error.has_value());
  EXPECT_TRUE(resp->error->fatal);
  EXPECT_EQ(resp->error->code, ErrorCode::kInvalidArgument);

  // The server closed after flushing: the client saw the FIN and closed.
  EXPECT_FALSE(client.connected());
  EXPECT_EQ(srv.stats().protocol_errors, 1u);
  // The worker closes its side right after the flushing writev; give it
  // a moment to run that line.
  for (int i = 0; i < 200 && srv.stats().connections != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(srv.stats().connections, 0u);
  srv.shutdown(/*drain=*/true);
}

TEST(ServerSocket, UndecodableQueryBodyIsFatal) {
  TuningServer srv(test_options(1));
  ASSERT_TRUE(srv.start().ok());

  WireClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", srv.port()).ok());

  // Well-formed frame, truncated QUERY body.
  const std::string bad = frame(MsgType::kQuery, 1, "short");
  ASSERT_EQ(::send(client.fd(), bad.data(), bad.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bad.size()));
  auto resp = client.next_response();
  ASSERT_TRUE(resp.ok()) << resp.error().to_string();
  ASSERT_TRUE(resp->error.has_value());
  EXPECT_TRUE(resp->error->fatal);
  srv.shutdown(/*drain=*/true);
}

TEST(ServerSocket, VersionMismatchedHelloIsRefused) {
  TuningServer srv(test_options(1));
  ASSERT_TRUE(srv.start().ok());

  // WireClient always sends a well-formed v1 HELLO, so speak raw bytes:
  // the frame itself decodes fine, the server rejects the version field.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(srv.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);

  Hello hello;
  hello.version = kWireVersion + 1;
  const std::string bytes = encode_hello(hello);
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));

  ByteRing in(1024);
  FrameView fv;
  char buf[1024];
  for (;;) {
    const FrameStatus st = next_frame(in, kMaxFrame, &fv);
    if (st == FrameStatus::kFrame) break;
    ASSERT_EQ(st, FrameStatus::kNeedMore);
    const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
    ASSERT_GT(r, 0) << "server closed without an ERROR frame";
    ASSERT_TRUE(in.append(buf, static_cast<std::size_t>(r), 1u << 20));
  }
  ASSERT_EQ(fv.type, MsgType::kError);
  auto err = decode_error(fv.body);
  ASSERT_TRUE(err.ok()) << err.error().to_string();
  EXPECT_TRUE(err->fatal);
  EXPECT_EQ(err->code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(err->message, "unsupported wire version");

  // Then the FIN: no HELLO_OK ever arrives.
  const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
  EXPECT_EQ(r, 0);
  ::close(fd);
  EXPECT_EQ(srv.stats().protocol_errors, 1u);
  srv.shutdown(/*drain=*/true);
}

TEST(ServerSocket, JsonDebugModeOverARawSocket) {
  TuningServer srv(test_options(1));
  ASSERT_TRUE(srv.start().ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(srv.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);

  const std::string lines =
      "{\"hello\": 1, \"tenant\": \"debug\"}\n"
      "{\"seq\": 3, \"lmax\": 4.0, \"protocols\": [\"X-MAC\"]}\n";
  ASSERT_EQ(::send(fd, lines.data(), lines.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(lines.size()));

  std::string got;
  char buf[4096];
  while (std::count(got.begin(), got.end(), '\n') < 2) {
    const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
    ASSERT_GT(r, 0) << "server closed before both response lines";
    got.append(buf, static_cast<std::size_t>(r));
  }
  EXPECT_NE(got.find("\"hello_ok\":1"), std::string::npos) << got;
  EXPECT_NE(got.find("\"seq\":3"), std::string::npos) << got;
  EXPECT_NE(got.find("\"ok\":true"), std::string::npos) << got;
  EXPECT_NE(got.find("\"recommended\":\"X-MAC\""), std::string::npos) << got;
  ::close(fd);
  srv.shutdown(/*drain=*/true);
}

TEST(ServerSocket, DrainShutdownAnswersEverythingThenFin) {
  TuningServer srv(test_options(2));
  ASSERT_TRUE(srv.start().ok());

  WireClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", srv.port()).ok());
  const int n = 6;
  for (int i = 0; i < n; ++i) {
    client.queue_query(test_query(3.0 + 0.5 * i), static_cast<std::uint64_t>(i));
  }
  ASSERT_TRUE(client.flush().ok());

  // Let the worker decode and admit the burst (decode is microseconds;
  // the solves behind it are what drain must wait for), then shut down
  // with the whole pipeline in flight: every admitted query must still
  // answer, then the connection gets a graceful FIN.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  srv.shutdown(/*drain=*/true);

  for (int i = 0; i < n; ++i) {
    auto resp = client.next_response();
    ASSERT_TRUE(resp.ok())
        << "response " << i << " lost in drain: " << resp.error().to_string();
    EXPECT_EQ(resp->seq, static_cast<std::uint64_t>(i));
    EXPECT_TRUE(resp->result.has_value());
  }
  auto eof = client.next_response();
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.error().code, ErrorCode::kUnavailable);

  // A new connection after shutdown must be refused.
  WireClient late;
  EXPECT_FALSE(late.connect("127.0.0.1", srv.port()).ok());
}

TEST(ServerSocket, ServerLatencyHistogramRecordsServes) {
  TuningServer srv(test_options(1));
  ASSERT_TRUE(srv.start().ok());
  WireClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", srv.port()).ok());
  const auto before =
      obs::Registry::global().histogram("server.request.latency").merged();
  ASSERT_TRUE(client.query(test_query(4.5), 1).ok());
  const auto after =
      obs::Registry::global().histogram("server.request.latency").merged();
  EXPECT_GE(after.count(), before.count() + 1);
  srv.shutdown(/*drain=*/true);
}

}  // namespace
}  // namespace edb::server
