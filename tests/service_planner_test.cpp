#include "service/planner.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/sweep.h"
#include "mac/registry.h"

namespace edb::service {
namespace {

// Sequential engine: the planner's grouping, not the executor, is under
// test, and a deterministic single thread keeps failures readable.
core::EngineOptions test_engine_opts() {
  return core::EngineOptions{
      .threads = 1, .parallel = false, .warm_start = true, .memoize = true};
}

TuningQuery xmac_query(double l_max) {
  TuningQuery q;
  q.scenario = core::Scenario::paper_default();
  q.scenario.requirements.l_max = l_max;
  q.protocols = {"X-MAC"};
  return q;
}

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest()
      : cache_(64, 4), engine_(test_engine_opts()), planner_(engine_, cache_) {}

  ShardedResultCache cache_;
  core::ScenarioEngine engine_;
  BatchPlanner planner_;
};

TEST_F(PlannerTest, GroupsLmaxSiblingsIntoOneWarmChain) {
  auto results = planner_.run({xmac_query(3.0), xmac_query(4.0),
                               xmac_query(5.0)});
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->per_protocol.size(), 1u);
    EXPECT_TRUE(r->per_protocol[0].feasible());
    EXPECT_EQ(r->recommended, 0);
  }
  const auto& stats = planner_.stats();
  EXPECT_EQ(stats.sweep_jobs, 1u);  // one chain answered all three
  EXPECT_EQ(stats.solved, 3u);
  EXPECT_EQ(stats.cache_hits, 0u);
}

TEST_F(PlannerTest, ResultsBitIdenticalToColdRunSweep) {
  auto results = planner_.run({xmac_query(3.0), xmac_query(4.0),
                               xmac_query(5.0)});
  auto model =
      mac::make_model("X-MAC", core::Scenario::paper_default().context)
          .take();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const double l_max = 3.0 + static_cast<double>(i);
    core::AppRequirements req = core::Scenario::paper_default().requirements;
    req.l_max = l_max;
    // The acceptance property: a served result equals a cold sequential
    // core::run_sweep of the same scenario, bit for bit.
    auto cold = core::run_sweep(*model, req, core::SweepKind::kLmax,
                                {l_max});
    const auto& served = results[i]->per_protocol[0];
    ASSERT_TRUE(cold.cells[0].feasible());
    ASSERT_TRUE(served.feasible());
    EXPECT_EQ(served.outcome->nbs.energy, cold.cells[0].outcome->nbs.energy);
    EXPECT_EQ(served.outcome->nbs.latency,
              cold.cells[0].outcome->nbs.latency);
    EXPECT_EQ(served.outcome->nash_product,
              cold.cells[0].outcome->nash_product);
    EXPECT_EQ(served.outcome->p1.energy, cold.cells[0].outcome->p1.energy);
    EXPECT_EQ(served.outcome->p2.latency, cold.cells[0].outcome->p2.latency);
  }
}

TEST_F(PlannerTest, CoalescesDuplicatesWithinABatch) {
  auto q = xmac_query(4.0);
  auto noisy = q;
  noisy.scenario.requirements.l_max *= 1.0 + 1e-13;  // quantizes identically
  auto results = planner_.run({q, q, noisy});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(planner_.stats().solved, 1u);
  EXPECT_EQ(planner_.stats().coalesced, 2u);
  EXPECT_EQ(results[0]->per_protocol[0].outcome->nbs.energy,
            results[2]->per_protocol[0].outcome->nbs.energy);
}

TEST_F(PlannerTest, SecondBatchIsAllCacheHits) {
  planner_.run({xmac_query(4.0), xmac_query(5.0)});
  const std::size_t solved_before = planner_.stats().solved;
  auto again = planner_.run({xmac_query(4.0), xmac_query(5.0)});
  EXPECT_EQ(planner_.stats().solved, solved_before);  // nothing new
  EXPECT_EQ(planner_.stats().cache_hits, 2u);
  for (const auto& r : again) ASSERT_TRUE(r.ok());
}

TEST_F(PlannerTest, PerQueryErrorsDoNotFailTheBatch) {
  auto bad_protocol = xmac_query(4.0);
  bad_protocol.protocols = {"T-MAC"};
  auto bad_scenario = xmac_query(4.0);
  bad_scenario.scenario.requirements.l_max = -1.0;
  auto bad_alpha = xmac_query(4.0);
  bad_alpha.options.alpha = 1.0;  // solve_weighted wants (0, 1) open
  auto results = planner_.run(
      {bad_protocol, xmac_query(4.0), bad_scenario, bad_alpha});
  ASSERT_EQ(results.size(), 4u);
  EXPECT_FALSE(results[0].ok());
  EXPECT_EQ(results[0].error().code, ErrorCode::kNotFound);
  EXPECT_TRUE(results[1].ok());
  EXPECT_FALSE(results[2].ok());
  EXPECT_FALSE(results[3].ok());
  EXPECT_EQ(results[3].error().code, ErrorCode::kInvalidArgument);
}

TEST_F(PlannerTest, RecommendationMaximisesEnergyHeadroom) {
  TuningQuery q;
  q.scenario = core::Scenario::paper_default();
  q.protocols = {"X-MAC", "DMAC"};
  auto results = planner_.run({q});
  ASSERT_TRUE(results[0].ok());
  const auto& r = *results[0];
  ASSERT_EQ(r.per_protocol.size(), 2u);
  ASSERT_GE(r.recommended, 0);
  // Recompute the ranking by hand (the protocol_selection rule).
  double best_headroom = -1;
  int best = -1;
  for (std::size_t i = 0; i < r.per_protocol.size(); ++i) {
    if (!r.per_protocol[i].feasible()) continue;
    const double headroom = q.scenario.requirements.e_budget -
                            r.per_protocol[i].outcome->nbs.energy;
    if (best < 0 || headroom > best_headroom) {
      best_headroom = headroom;
      best = static_cast<int>(i);
    }
  }
  EXPECT_EQ(r.recommended, best);
}

TEST_F(PlannerTest, ProtocolOrderIsCanonical) {
  TuningQuery q;
  q.scenario = core::Scenario::paper_default();
  q.protocols = {"xmac", "dmac"};
  auto results = planner_.run({q});
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(results[0]->per_protocol[0].protocol, "DMAC");
  EXPECT_EQ(results[0]->per_protocol[1].protocol, "X-MAC");
}

}  // namespace
}  // namespace edb::service
