#include "service/key.h"

#include <gtest/gtest.h>

#include "core/scenario.h"

namespace edb::service {
namespace {

core::Scenario base() { return core::Scenario::paper_default(); }

TEST(QuantizeTest, FloatNoiseCollides) {
  EXPECT_EQ(quantize_token(0.06), quantize_token(0.06 * (1.0 + 1e-13)));
  EXPECT_EQ(quantize_token(6.0), quantize_token(6.0 - 6e-13));
  EXPECT_EQ(quantize_token(0.0), quantize_token(-0.0));
}

TEST(QuantizeTest, ValueDifferencesSurvive) {
  EXPECT_NE(quantize_token(0.06), quantize_token(0.05));
  EXPECT_NE(quantize_token(6.0), quantize_token(6.0001));
  EXPECT_NE(quantize_token(1.0), quantize_token(-1.0));
}

TEST(Fnv1aTest, StableAndDiscriminating) {
  // Pinned value: keys may be logged/persisted, so the hash must not
  // drift across platforms or refactors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
  EXPECT_EQ(fnv1a64("req.l_max=6;"), fnv1a64("req.l_max=6;"));
}

TEST(ProtocolSetTest, SpellingAndOrderInsensitive) {
  auto a = canonical_protocol_set({"xmac", "DMAC"});
  auto b = canonical_protocol_set({"D-MAC", "X-MAC"});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ((*a)[0], "DMAC");
  EXPECT_EQ((*a)[1], "X-MAC");
}

TEST(ProtocolSetTest, DedupesAndDefaults) {
  auto dup = canonical_protocol_set({"X-MAC", "xmac", "x mac"});
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup->size(), 1u);

  auto def = canonical_protocol_set({});
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->size(), 3u);  // the paper's three
  // The default set is canonical too: any spelling of the same three
  // protocols lands on the identical (sorted) order.
  EXPECT_EQ(*def, *canonical_protocol_set({"xmac", "dmac", "lmac"}));
}

TEST(ProtocolSetTest, UnknownProtocolIsAnError) {
  auto r = canonical_protocol_set({"T-MAC"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
}

TEST(QueryKeyTest, NoiseEquivalentScenariosCollide) {
  core::Scenario a = base();
  core::Scenario b = base();
  b.requirements.l_max *= 1.0 + 1e-13;
  b.context.fs *= 1.0 - 1e-14;
  EXPECT_EQ(protocol_key(a, "X-MAC", {}), protocol_key(b, "X-MAC", {}));
}

TEST(QueryKeyTest, ValueAffectingFieldsSplit) {
  core::Scenario a = base();

  core::Scenario req = base();
  req.requirements.l_max = 5.0;
  EXPECT_NE(protocol_key(a, "X-MAC", {}), protocol_key(req, "X-MAC", {}));

  core::Scenario radio = base();
  radio.context.radio.p_rx *= 1.01;
  EXPECT_NE(protocol_key(a, "X-MAC", {}), protocol_key(radio, "X-MAC", {}));

  core::Scenario ring = base();
  ring.context.ring.depth = 6;
  EXPECT_NE(protocol_key(a, "X-MAC", {}), protocol_key(ring, "X-MAC", {}));

  EXPECT_NE(protocol_key(a, "X-MAC", {}), protocol_key(a, "DMAC", {}));
  EXPECT_NE(protocol_key(a, "X-MAC", QueryOptions{0.5}),
            protocol_key(a, "X-MAC", QueryOptions{0.7}));
}

TEST(QueryKeyTest, RadioDisplayNameDoesNotParticipate) {
  core::Scenario a = base();
  core::Scenario b = base();
  b.context.radio.name = "same constants, different label";
  EXPECT_EQ(protocol_key(a, "X-MAC", {}), protocol_key(b, "X-MAC", {}));
}

TEST(QueryKeyTest, WholeQueryKeyCoversProtocolSet) {
  core::Scenario s = base();
  const auto one = canonical_protocol_set({"X-MAC"}).value();
  const auto two = canonical_protocol_set({"X-MAC", "DMAC"}).value();
  EXPECT_NE(query_key(s, one, {}), query_key(s, two, {}));
  EXPECT_EQ(query_key(s, two, {}),
            query_key(s, canonical_protocol_set({"dmac", "xmac"}).value(),
                      {}));
}

TEST(QueryKeyTest, CanonicalFormIsReadable) {
  const auto key = protocol_key(base(), "X-MAC", {});
  EXPECT_NE(key.canonical.find("req.l_max="), std::string::npos);
  EXPECT_NE(key.canonical.find("protocol=X-MAC;"), std::string::npos);
  EXPECT_EQ(key.hash, fnv1a64(key.canonical));
}

TEST(QueryKeyTest, ContextKeyIgnoresRequirements) {
  core::Scenario a = base();
  core::Scenario b = base();
  b.requirements.l_max = 2.0;
  EXPECT_EQ(context_key(a.context), context_key(b.context));
  core::Scenario c = base();
  c.context.fs *= 2.0;
  EXPECT_NE(context_key(a.context), context_key(c.context));
}

}  // namespace
}  // namespace edb::service
