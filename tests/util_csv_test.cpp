#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace edb {
namespace {

TEST(CsvWriter, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter w(out, {"a", "b"});
  w.row(std::vector<std::string>{"1", "2"});
  w.row(std::vector<double>{3.5, 4.25});
  EXPECT_EQ(out.str(), "a,b\n1,2\n3.5,4.25\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, DoubleFormattingPreservesPrecision) {
  std::ostringstream out;
  CsvWriter w(out, {"x"});
  w.row(std::vector<double>{0.012345678901});  // %.10g -> 10 significant digits
  EXPECT_NE(out.str().find("0.0123456789"), std::string::npos);
}

TEST(ParseCsvLine, SimpleSplit) {
  auto cells = parse_csv_line("a,b,c");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[2], "c");
}

TEST(ParseCsvLine, QuotedCommaAndQuotes) {
  auto cells = parse_csv_line("\"a,b\",\"say \"\"hi\"\"\",c");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a,b");
  EXPECT_EQ(cells[1], "say \"hi\"");
  EXPECT_EQ(cells[2], "c");
}

TEST(ParseCsvLine, EmptyCells) {
  auto cells = parse_csv_line(",,");
  ASSERT_EQ(cells.size(), 3u);
  for (const auto& c : cells) EXPECT_TRUE(c.empty());
}

TEST(CsvRoundTrip, WriteThenParse) {
  std::ostringstream out;
  CsvWriter w(out, {"name", "value"});
  w.row(std::vector<std::string>{"with,comma", "with \"quote\""});
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);
  auto cells = parse_csv_line(line);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0], "with,comma");
  EXPECT_EQ(cells[1], "with \"quote\"");
}

}  // namespace
}  // namespace edb
