#include "net/traffic.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/math.h"

namespace edb::net {
namespace {

TEST(TrafficModel, PeriodIsInverseRate) {
  TrafficModel m{.fs = 0.01, .jitter_frac = 0.1};
  EXPECT_DOUBLE_EQ(m.period(), 100.0);
}

TEST(TrafficModel, ValidateRejectsBadConfig) {
  EXPECT_FALSE((TrafficModel{.fs = 0.0, .jitter_frac = 0.1}).validate().ok());
  EXPECT_FALSE((TrafficModel{.fs = 0.01, .jitter_frac = 1.0}).validate().ok());
  EXPECT_FALSE(
      (TrafficModel{.fs = 0.01, .jitter_frac = -0.1}).validate().ok());
  EXPECT_TRUE((TrafficModel{.fs = 0.01, .jitter_frac = 0.0}).validate().ok());
}

TEST(TrafficModel, InitialPhaseWithinPeriod) {
  TrafficModel m{.fs = 0.1, .jitter_frac = 0.1};
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double p = m.initial_phase(rng);
    EXPECT_GE(p, 0.0);
    EXPECT_LT(p, m.period());
  }
}

TEST(TrafficModel, JitteredPeriodsStayWithinBand) {
  TrafficModel m{.fs = 0.1, .jitter_frac = 0.2};
  Rng rng(5);
  double nominal = 0;
  for (int i = 0; i < 1000; ++i) {
    const double next = m.next_generation_time(nominal, rng);
    const double gap = next - nominal;
    EXPECT_GE(gap, m.period() * 0.8 - 1e-12);
    EXPECT_LE(gap, m.period() * 1.2 + 1e-12);
    nominal = next;
  }
}

TEST(TrafficModel, LongRunRateMatchesFs) {
  TrafficModel m{.fs = 0.1, .jitter_frac = 0.15};
  Rng rng(7);
  double t = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) t = m.next_generation_time(t, rng);
  EXPECT_NEAR(n / t, 0.1, 0.002);
}

TEST(TrafficModel, ZeroJitterIsExactlyPeriodic) {
  TrafficModel m{.fs = 0.05, .jitter_frac = 0.0};
  Rng rng(9);
  EXPECT_DOUBLE_EQ(m.next_generation_time(40.0, rng), 60.0);
}

// --- Interval moment accessors (the kV2Queueing inputs) -----------------
//
// Each arrival process gets exact-value checks against the closed forms
// documented in traffic.h, at a period chosen so the expected values are
// clean decimals.

TEST(TrafficModel, PeriodicMomentsMatchClosedForm) {
  TrafficModel m{.fs = 0.1, .jitter_frac = 0.3};
  // I = T + U(-jT, jT), T = 10: E[I^2] = T^2 (1 + j^2/3) = 100 * 1.03.
  EXPECT_DOUBLE_EQ(m.interval_mean(), 10.0);
  EXPECT_DOUBLE_EQ(m.interval_second_moment(), 100.0 * (1.0 + 0.09 / 3.0));
  EXPECT_NEAR(m.interval_variance(), 100.0 * 0.03, 1e-12);
  EXPECT_NEAR(m.squared_cv(), 0.03, 1e-15);
  EXPECT_DOUBLE_EQ(m.peak_to_mean(), 1.0);
}

TEST(TrafficModel, JitterFreePeriodicHasZeroVariance) {
  TrafficModel m{.fs = 0.25, .jitter_frac = 0.0};
  EXPECT_DOUBLE_EQ(m.interval_second_moment(), 16.0);
  EXPECT_DOUBLE_EQ(m.interval_variance(), 0.0);
  EXPECT_DOUBLE_EQ(m.squared_cv(), 0.0);
}

TEST(TrafficModel, PoissonMomentsMatchClosedForm) {
  TrafficModel m{.fs = 0.5, .arrivals = ArrivalProcess::kPoisson};
  // Exponential intervals: E[I^2] = 2 T^2, Ca^2 = 1.
  EXPECT_DOUBLE_EQ(m.interval_mean(), 2.0);
  EXPECT_DOUBLE_EQ(m.interval_second_moment(), 8.0);
  EXPECT_DOUBLE_EQ(m.interval_variance(), 4.0);
  EXPECT_DOUBLE_EQ(m.squared_cv(), 1.0);
  EXPECT_DOUBLE_EQ(m.peak_to_mean(), 1.0);
}

TEST(TrafficModel, BurstyMomentsMatchClosedForm) {
  TrafficModel m{.fs = 1.0, .arrivals = ArrivalProcess::kBursty,
                 .burst_factor = 4.0};
  // T = 1, B = 4: E[I^2] = [(B-1) + (B^2-B+1)^2] / B^3
  //             = (3 + 13^2) / 64 = 172/64 = 2.6875.
  EXPECT_DOUBLE_EQ(m.interval_mean(), 1.0);
  EXPECT_DOUBLE_EQ(m.interval_second_moment(), 2.6875);
  EXPECT_DOUBLE_EQ(m.interval_variance(), 1.6875);
  EXPECT_DOUBLE_EQ(m.squared_cv(), 1.6875);
  EXPECT_DOUBLE_EQ(m.peak_to_mean(), 4.0);
}

TEST(TrafficModel, BurstyMomentsDegenerateAtUnitBurstFactor) {
  // B = 1 collapses the mixture to the jitter-free periodic process.
  TrafficModel m{.fs = 0.2, .arrivals = ArrivalProcess::kBursty,
                 .burst_factor = 1.0};
  EXPECT_DOUBLE_EQ(m.interval_second_moment(), 25.0);
  EXPECT_DOUBLE_EQ(m.squared_cv(), 0.0);
}

TEST(TrafficModel, BurstySecondMomentMatchesEmpiricalMean) {
  // The closed form must describe what next_generation_time actually
  // draws: accumulate E[I^2] empirically over the real RNG stream.
  TrafficModel m{.fs = 0.1, .arrivals = ArrivalProcess::kBursty,
                 .burst_factor = 8.0};
  Rng rng(11);
  double prev = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double next = m.next_generation_time(prev, rng);
    const double gap = next - prev;
    sum_sq += gap * gap;
    prev = next;
  }
  EXPECT_NEAR(sum_sq / n, m.interval_second_moment(),
              0.05 * m.interval_second_moment());
}

TEST(TrafficModel, SquaredCvGrowsWithBurstFactor) {
  double last = 0.0;
  for (double b : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    TrafficModel m{.fs = 0.1, .arrivals = ArrivalProcess::kBursty,
                   .burst_factor = b};
    EXPECT_GT(m.squared_cv(), last);
    last = m.squared_cv();
  }
}

}  // namespace
}  // namespace edb::net
