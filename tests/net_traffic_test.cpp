#include "net/traffic.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/math.h"

namespace edb::net {
namespace {

TEST(TrafficModel, PeriodIsInverseRate) {
  TrafficModel m{.fs = 0.01, .jitter_frac = 0.1};
  EXPECT_DOUBLE_EQ(m.period(), 100.0);
}

TEST(TrafficModel, ValidateRejectsBadConfig) {
  EXPECT_FALSE((TrafficModel{.fs = 0.0, .jitter_frac = 0.1}).validate().ok());
  EXPECT_FALSE((TrafficModel{.fs = 0.01, .jitter_frac = 1.0}).validate().ok());
  EXPECT_FALSE(
      (TrafficModel{.fs = 0.01, .jitter_frac = -0.1}).validate().ok());
  EXPECT_TRUE((TrafficModel{.fs = 0.01, .jitter_frac = 0.0}).validate().ok());
}

TEST(TrafficModel, InitialPhaseWithinPeriod) {
  TrafficModel m{.fs = 0.1, .jitter_frac = 0.1};
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double p = m.initial_phase(rng);
    EXPECT_GE(p, 0.0);
    EXPECT_LT(p, m.period());
  }
}

TEST(TrafficModel, JitteredPeriodsStayWithinBand) {
  TrafficModel m{.fs = 0.1, .jitter_frac = 0.2};
  Rng rng(5);
  double nominal = 0;
  for (int i = 0; i < 1000; ++i) {
    const double next = m.next_generation_time(nominal, rng);
    const double gap = next - nominal;
    EXPECT_GE(gap, m.period() * 0.8 - 1e-12);
    EXPECT_LE(gap, m.period() * 1.2 + 1e-12);
    nominal = next;
  }
}

TEST(TrafficModel, LongRunRateMatchesFs) {
  TrafficModel m{.fs = 0.1, .jitter_frac = 0.15};
  Rng rng(7);
  double t = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) t = m.next_generation_time(t, rng);
  EXPECT_NEAR(n / t, 0.1, 0.002);
}

TEST(TrafficModel, ZeroJitterIsExactlyPeriodic) {
  TrafficModel m{.fs = 0.05, .jitter_frac = 0.0};
  Rng rng(9);
  EXPECT_DOUBLE_EQ(m.next_generation_time(40.0, rng), 60.0);
}

}  // namespace
}  // namespace edb::net
