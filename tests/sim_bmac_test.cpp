// Behavioural B-MAC: long-preamble delivery and the overhearing cost the
// protocol is famous for (and that X-MAC's strobes eliminate).
#include "sim/bmac_sim.h"

#include <gtest/gtest.h>

#include "sim/builder.h"
#include "sim/simulation.h"
#include "sim/xmac_sim.h"

namespace edb::sim {
namespace {

MacFactory bmac_factory(double tw) {
  return [tw](MacEnv env) {
    return std::make_unique<BmacSim>(std::move(env),
                                     BmacSimParams{.tw = tw});
  };
}

SimulationConfig fast_config(double duration, std::uint64_t seed = 1) {
  SimulationConfig cfg;
  cfg.traffic.fs = 0.02;
  cfg.duration = duration;
  cfg.seed = seed;
  return cfg;
}

TEST(BmacSim, DeliversOverOneHop) {
  Simulation sim(fast_config(500));
  build_chain(sim, 1);
  sim.finalize(bmac_factory(0.2));
  sim.run();
  EXPECT_GT(sim.metrics().generated(), 5u);
  EXPECT_GE(sim.metrics().delivery_ratio(), 0.99);
}

TEST(BmacSim, DeliversOverFourHops) {
  Simulation sim(fast_config(1500, 7));
  build_chain(sim, 4);
  sim.finalize(bmac_factory(0.2));
  sim.run();
  EXPECT_GT(sim.metrics().generated(), 50u);
  EXPECT_GE(sim.metrics().delivery_ratio(), 0.95);
}

TEST(BmacSim, DelayIsFullPreamblePerHop) {
  // Unlike X-MAC's expected Tw/2, B-MAC pays the whole preamble per hop.
  const double tw = 0.25;
  Simulation sim(fast_config(2000, 3));
  build_chain(sim, 3);
  sim.finalize(bmac_factory(tw));
  sim.run();
  const double measured = sim.metrics().mean_delay_from_depth(3);
  const double predicted = 3 * tw;  // + small airtimes
  EXPECT_GT(measured, predicted * 0.9);
  EXPECT_LT(measured, predicted * 1.5);
}

TEST(BmacSim, SenderPaysTheWholePreamble) {
  // One packet costs the sender ~tw of TX time.
  SimulationConfig cfg = fast_config(1000, 9);
  cfg.traffic.fs = 0.01;
  Simulation sim(cfg);
  build_chain(sim, 1);
  sim.finalize(bmac_factory(0.3));
  sim.run();
  const auto sent = sim.node(1).mac().packets_sent();
  ASSERT_GT(sent, 0u);
  const double tx_seconds = sim.node(1).radio().seconds_in(RadioState::kTx);
  EXPECT_NEAR(tx_seconds, sent * 0.3, sent * 0.3 * 0.1);
}

TEST(BmacSim, ThirdPartiesOverhearWhereXmacSleeps) {
  // Chain 0-1-2 plus traffic only from node 2 to the sink.  Node 1 relays;
  // node 0's and node 2's *neighbour* exposure is identical in both
  // protocols, so compare the relay's listen time: under B-MAC every
  // preamble pins all polls in range; under X-MAC a foreign strobe releases
  // them.  Compare the sink's listen time for the leg it only overhears.
  auto sink_listen = [](const MacFactory& factory) {
    SimulationConfig cfg;
    cfg.traffic.fs = 0.02;
    cfg.duration = 2000;
    cfg.seed = 11;
    Simulation sim(cfg);
    build_chain(sim, 2);
    sim.finalize(factory);
    sim.run();
    // Leg 2 -> 1 is overheard by the sink (node 0) in this layout only
    // under long preambles (node 0 is in range of node 1, the receiver and
    // future sender).  Total listen time captures that exposure.
    return sim.node(0).radio().seconds_in(RadioState::kListen);
  };
  const double bmac_listen = sink_listen(bmac_factory(0.2));
  const double xmac_listen = sink_listen([](MacEnv env) {
    return std::make_unique<XmacSim>(std::move(env),
                                     XmacSimParams{.tw = 0.2});
  });
  EXPECT_GT(bmac_listen, 1.5 * xmac_listen);
}

TEST(BmacSim, IdlePollingCostMatchesXmac) {
  // Without traffic the two LPL protocols poll identically.
  auto idle_energy = [](const MacFactory& factory) {
    SimulationConfig cfg;
    cfg.traffic.fs = 1e-9;
    cfg.duration = 2000;
    cfg.seed = 13;
    Simulation sim(cfg);
    build_chain(sim, 1);
    sim.finalize(factory);
    sim.run();
    return sim.node_energy(1);
  };
  const double bmac = idle_energy(bmac_factory(0.5));
  const double xmac = idle_energy([](MacEnv env) {
    return std::make_unique<XmacSim>(std::move(env),
                                     XmacSimParams{.tw = 0.5});
  });
  EXPECT_NEAR(bmac, xmac, 0.05 * xmac);
}

}  // namespace
}  // namespace edb::sim
