// Behavioural X-MAC: delivery, multi-hop forwarding, duty cycling, and the
// strobed-preamble timing on small chain topologies.
#include "sim/xmac_sim.h"

#include <gtest/gtest.h>

#include "sim/builder.h"
#include "sim/simulation.h"

namespace edb::sim {
namespace {

MacFactory xmac_factory(double tw) {
  return [tw](MacEnv env) {
    return std::make_unique<XmacSim>(std::move(env),
                                     XmacSimParams{.tw = tw});
  };
}

SimulationConfig fast_config(double duration, std::uint64_t seed = 1) {
  SimulationConfig cfg;
  cfg.traffic.fs = 0.02;  // one packet per 50 s per source
  cfg.duration = duration;
  cfg.seed = seed;
  return cfg;
}

TEST(XmacSim, DeliversOverOneHop) {
  Simulation sim(fast_config(500));
  build_chain(sim, 1);
  sim.finalize(xmac_factory(0.2));
  sim.run();
  EXPECT_GT(sim.metrics().generated(), 5u);
  EXPECT_GE(sim.metrics().delivery_ratio(), 0.99);
}

TEST(XmacSim, DeliversOverFiveHops) {
  Simulation sim(fast_config(1000, 7));
  build_chain(sim, 5);
  sim.finalize(xmac_factory(0.25));
  sim.run();
  EXPECT_GT(sim.metrics().generated(), 50u);
  EXPECT_GE(sim.metrics().delivery_ratio(), 0.95);
}

TEST(XmacSim, MeanDelayTracksHalfWakePerHop) {
  // Analytic per-hop latency: Tw/2 + handshake.  Over 3 hops with Tw=0.3 s
  // the prediction is ~0.47 s; accept a generous simulation band.
  const double tw = 0.3;
  Simulation sim(fast_config(2000, 3));
  build_chain(sim, 3);
  sim.finalize(xmac_factory(tw));
  sim.run();
  const double measured = sim.metrics().mean_delay_from_depth(3);
  const double predicted = 3 * (tw / 2 + 0.003);
  EXPECT_GT(measured, predicted * 0.6);
  EXPECT_LT(measured, predicted * 1.6);
}

TEST(XmacSim, DutyCycleMatchesPollSchedule) {
  // An idle node (no traffic at all) polls every Tw for poll_duration:
  // its listen fraction must be close to poll/Tw.
  SimulationConfig cfg = fast_config(2000);
  cfg.traffic.fs = 1e-9;  // effectively no traffic in 2000 s
  Simulation sim(cfg);
  build_chain(sim, 1);
  sim.finalize(xmac_factory(0.5));
  sim.run();
  const auto& radio = sim.node(1).radio();
  const double expected =
      cfg.radio.poll_duration() / 0.5 * cfg.duration;
  EXPECT_NEAR(radio.seconds_in(RadioState::kListen), expected,
              expected * 0.1);
  // And it must essentially never transmit.
  EXPECT_LT(radio.seconds_in(RadioState::kTx), 0.01);
}

TEST(XmacSim, LongerWakeIntervalLowersIdleEnergy) {
  auto idle_power = [](double tw) {
    SimulationConfig cfg = fast_config(2000);
    cfg.traffic.fs = 1e-9;
    Simulation sim(cfg);
    build_chain(sim, 1);
    sim.finalize(xmac_factory(tw));
    sim.run();
    return sim.node_energy(1) / cfg.duration;
  };
  EXPECT_LT(idle_power(1.0), idle_power(0.2));
}

TEST(XmacSim, StrobeHandshakeWakesOnlyTheParent) {
  // Chain 0-1-2: node 2 sends to 1; node 0 is in range of 1 but the strobe
  // is addressed to 1, so node 0 must not spend energy receiving data.
  Simulation sim(fast_config(300, 11));
  build_chain(sim, 2);
  sim.finalize(xmac_factory(0.2));
  sim.run();
  EXPECT_GE(sim.metrics().delivery_ratio(), 0.9);
  // Hop counts reflect the forwarding chain: node 2's packets were relayed
  // once (by node 1); node 1's own packets went straight to the sink.
  for (const auto& rec : sim.metrics().records()) {
    EXPECT_EQ(rec.packet.hops, rec.packet.origin == 2 ? 1 : 0);
  }
}

TEST(XmacSim, QueueDrainsBackToBack) {
  // Two packets enqueued nearly simultaneously both arrive.
  SimulationConfig cfg = fast_config(400, 13);
  cfg.traffic.fs = 0.05;
  Simulation sim(cfg);
  build_chain(sim, 1);
  sim.finalize(xmac_factory(0.2));
  sim.run();
  EXPECT_GT(sim.metrics().generated(), 10u);
  EXPECT_GE(sim.metrics().delivery_ratio(), 0.99);
}

TEST(XmacSim, ReportsQueueAndCounters) {
  Simulation sim(fast_config(500, 17));
  build_chain(sim, 2);
  sim.finalize(xmac_factory(0.2));
  sim.run();
  EXPECT_EQ(sim.node(2).mac().queue_length(), 0u);
  EXPECT_GT(sim.node(2).mac().packets_sent(), 0u);
  EXPECT_EQ(sim.node(2).mac().packets_dropped(), 0u);
}

}  // namespace
}  // namespace edb::sim
