#include "mac/lmac.h"

#include <gtest/gtest.h>

namespace edb::mac {
namespace {

class LmacTest : public ::testing::Test {
 protected:
  ModelContext ctx_;
  LmacModel model_{ctx_};
};

TEST_F(LmacTest, OneParameterSlotDuration) {
  ASSERT_EQ(model_.params().dim(), 1u);
  EXPECT_EQ(model_.params().info(0).name, "t_slot");
  EXPECT_DOUBLE_EQ(model_.params().info(0).lo, 3e-3);
  EXPECT_DOUBLE_EQ(model_.params().info(0).hi, 0.6);
}

TEST_F(LmacTest, FrameIsSlotsTimesSlotWidth) {
  EXPECT_EQ(model_.config().n_slots, 16);
  EXPECT_DOUBLE_EQ(model_.frame_length({0.05}), 0.8);
}

TEST_F(LmacTest, EnergyDominatedByControlSections) {
  const std::vector<double> x{0.05};
  const auto p = model_.power_at_ring(x, 1);
  // TDMA: no carrier sensing, no overhearing cost.
  EXPECT_DOUBLE_EQ(p.cs, 0.0);
  EXPECT_DOUBLE_EQ(p.ovr, 0.0);
  // Listening to the other 15 control sections dwarfs everything else.
  EXPECT_GT(p.srx, p.stx);
  EXPECT_GT(p.srx, p.tx + p.rx);
  // Hand-check srx: (n-1) * (startup + CM airtime) * Prx / frame.
  const auto& r = ctx_.radio;
  const double expected =
      15.0 * (r.t_startup + ctx_.packet.ctrl_airtime(r)) * r.p_rx / 0.8;
  EXPECT_NEAR(p.srx, expected, 1e-12);
}

TEST_F(LmacTest, EnergyStrictlyDecreasingInSlotWidth) {
  double prev = 1e9;
  for (double ts : {0.003, 0.01, 0.05, 0.1, 0.3, 0.6}) {
    const double e = model_.energy({ts});
    EXPECT_LT(e, prev);
    prev = e;
  }
}

TEST_F(LmacTest, LatencyIsHalfFramePlusOwnSlotPerHop) {
  const std::vector<double> x{0.05};
  EXPECT_NEAR(model_.hop_latency(x, 2), (8.0 + 1.0) * 0.05, 1e-12);
  EXPECT_NEAR(model_.latency(x), 5 * 9.0 * 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(model_.source_wait(x), 0.0);
}

TEST_F(LmacTest, PaperCalibrationRanges) {
  // Fig. 1c/2c: LMAC is the most expensive protocol — E about 0.22 J at
  // Lmax = 1 s (paper axis tops at 0.25 J) and still ~0.04 J at 6 s.
  const double ts_1s = 1.0 / 45.0;
  EXPECT_GT(model_.energy({ts_1s}), 0.2);
  EXPECT_LT(model_.energy({ts_1s}), 0.25);
  const double ts_6s = 6.0 / 45.0;
  EXPECT_GT(model_.energy({ts_6s}), 0.035);
  EXPECT_LT(model_.energy({ts_6s}), 0.040);
}

TEST_F(LmacTest, SlotMustFitControlPlusData) {
  // min_slot_width = startup + CM + data + guard.
  const auto& r = ctx_.radio;
  EXPECT_NEAR(model_.min_slot_width(),
              r.t_startup + ctx_.packet.ctrl_airtime(r) +
                  ctx_.packet.data_airtime(r) + 0.5e-3,
              1e-12);
  EXPECT_GT(model_.feasibility_margin({0.003}), 0.0);
}

TEST_F(LmacTest, CapacityConstraintBindsUnderHeavyTraffic) {
  ModelContext heavy = ctx_;
  heavy.fs = 0.01;  // f_out(1) = 0.25 pkt/s; 16 * 0.6 s frame -> load 2.4
  LmacModel jam(heavy);
  EXPECT_LT(jam.feasibility_margin({0.6}), 0.0);
  EXPECT_GT(jam.feasibility_margin({0.01}), 0.0);
}

TEST_F(LmacTest, MoreSlotsLowerOwnCmCostButLongerFrames) {
  LmacConfig wide;
  wide.n_slots = 32;
  LmacModel big(ctx_, wide);
  const auto p16 = model_.power_at_ring({0.05}, 1);
  const auto p32 = big.power_at_ring({0.05}, 1);
  // Own CM is sent once per (longer) frame.
  EXPECT_LT(p32.stx, p16.stx);
  // But the e2e latency doubles with the frame.
  // Per-hop (n/2 + 1) t_slot: ratio 17/9 between n = 32 and n = 16.
  EXPECT_GT(big.latency({0.05}), 1.85 * model_.latency({0.05}));
}

TEST_F(LmacTest, FrameTooSmallForDensityIsRejected) {
  LmacConfig tiny;
  tiny.n_slots = 8;  // < 2*density + 2 = 16
  EXPECT_DEATH(LmacModel(ctx_, tiny), "collision-free");
}

}  // namespace
}  // namespace edb::mac
