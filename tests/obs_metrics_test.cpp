// Metrics registry contract: named instruments are stable singletons,
// recording is thread-safe, and snapshots render deterministically in
// registration order.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace edb::obs {
namespace {

TEST(Counter, AddsAndSums) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentAddsLoseNothing) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(Gauge, TracksLevelAndHighWatermark) {
  Gauge g;
  g.set(5);
  g.add(3);
  EXPECT_EQ(g.value(), 8);
  EXPECT_EQ(g.max(), 8);
  g.add(-6);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 8);  // watermark survives the drop
  g.set(-1);
  EXPECT_EQ(g.value(), -1);
  EXPECT_EQ(g.max(), 8);
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 0);
}

TEST(Histogram, StripesMergeIntoOneDistribution) {
  Histogram h;
  // Record from several threads so multiple stripes fill; the merged
  // view must still hold every sample.
  constexpr int kThreads = 6;
  constexpr int kSamples = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (int i = 0; i < kSamples; ++i) h.record(1e-3);
    });
  }
  for (auto& w : workers) w.join();
  const LatencyHistogram merged = h.merged();
  EXPECT_EQ(merged.count(), static_cast<std::size_t>(kThreads) * kSamples);
  EXPECT_DOUBLE_EQ(merged.quantile(0.5), 1e-3);
}

TEST(Registry, SameNameReturnsSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 7u);
  Gauge& g1 = reg.gauge("x.gauge");
  Gauge& g2 = reg.gauge("x.gauge");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = reg.histogram("x.hist");
  Histogram& h2 = reg.histogram("x.hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(Registry, SnapshotPreservesRegistrationOrder) {
  Registry reg;
  reg.counter("z.last");  // registration order, not name order
  reg.gauge("a.middle");
  reg.histogram("m.first");
  reg.counter("z.last");  // re-lookup must not re-register
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "z.last");
  EXPECT_EQ(snap.entries[1].name, "a.middle");
  EXPECT_EQ(snap.entries[2].name, "m.first");
}

TEST(Registry, SnapshotCarriesValues) {
  Registry reg;
  reg.counter("c").add(3);
  reg.gauge("g").set(9);
  reg.gauge("g").add(-4);
  for (int i = 0; i < 100; ++i) reg.histogram("h").record(2e-3);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].kind, MetricKind::kCounter);
  EXPECT_EQ(snap.entries[0].count, 3u);
  EXPECT_EQ(snap.entries[1].kind, MetricKind::kGauge);
  EXPECT_EQ(snap.entries[1].gauge, 5);
  EXPECT_EQ(snap.entries[1].gauge_max, 9);
  EXPECT_EQ(snap.entries[2].kind, MetricKind::kHistogram);
  EXPECT_EQ(snap.entries[2].count, 100u);
  EXPECT_DOUBLE_EQ(snap.entries[2].p50, 2e-3);
  EXPECT_DOUBLE_EQ(snap.entries[2].p999, 2e-3);
  EXPECT_DOUBLE_EQ(snap.entries[2].max, 2e-3);
}

TEST(Registry, SnapshotsOfSameStateAreByteIdentical) {
  Registry reg;
  reg.counter("solver.solves").add(12);
  reg.histogram("service.latency").record(5e-3);
  const MetricsSnapshot s1 = reg.snapshot();
  const MetricsSnapshot s2 = reg.snapshot();
  EXPECT_EQ(s1.text(), s2.text());
  EXPECT_EQ(s1.json(), s2.json());
}

TEST(Registry, TextAndJsonRenderEveryMetric) {
  Registry reg;
  reg.counter("a.count").add(1);
  reg.gauge("b.gauge").set(2);
  reg.histogram("c.hist").record(1e-3);
  const MetricsSnapshot snap = reg.snapshot();
  const std::string text = snap.text();
  const std::string json = snap.json();
  for (const char* name : {"a.count", "b.gauge", "c.hist"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
  // Flat-object shape: one '{', one '}', quoted keys with suffixes.
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"a.count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"b.gauge\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"c.hist.count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"c.hist.p99\": "), std::string::npos);
  EXPECT_NE(json.find("\"c.hist.p999\": "), std::string::npos);
}

TEST(Registry, ResetZeroesButKeepsRegistration) {
  Registry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(5);
  reg.histogram("h").record(1.0);
  reg.reset();
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].count, 0u);
  EXPECT_EQ(snap.entries[1].gauge, 0);
  EXPECT_EQ(snap.entries[2].count, 0u);
}

TEST(Registry, GlobalIsASingleton) {
  Counter& a = Registry::global().counter("obs_metrics_test.global");
  Counter& b = Registry::global().counter("obs_metrics_test.global");
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace edb::obs
