// Failure injection and determinism properties of the simulator.
#include <gtest/gtest.h>

#include "sim/builder.h"
#include "sim/simulation.h"
#include "sim/xmac_sim.h"

namespace edb::sim {
namespace {

MacFactory xmac_factory(double tw) {
  return [tw](MacEnv env) {
    return std::make_unique<XmacSim>(std::move(env),
                                     XmacSimParams{.tw = tw});
  };
}

struct RunStats {
  double delivery;
  std::size_t delivered;
  std::size_t injected;
  double energy_n1;
};

RunStats run_with_loss(double loss, std::uint64_t seed) {
  SimulationConfig cfg;
  cfg.traffic.fs = 0.02;
  cfg.duration = 1500;
  cfg.seed = seed;
  Simulation sim(cfg);
  build_chain(sim, 2);
  if (loss > 0) sim.channel().set_loss_probability(loss, seed ^ 0xbad);
  sim.finalize(xmac_factory(0.2));
  sim.run();
  return {sim.metrics().delivery_ratio(), sim.metrics().delivered(),
          sim.channel().injected_losses(), sim.node_energy(1)};
}

TEST(FaultInjection, ZeroLossInjectsNothing) {
  auto r = run_with_loss(0.0, 1);
  EXPECT_EQ(r.injected, 0u);
  EXPECT_GE(r.delivery, 0.99);
}

TEST(FaultInjection, RetransmissionsAbsorbModerateLoss) {
  // X-MAC retries (strobe train + up to 3 data retries) ride through 10%
  // per-frame loss with high delivery.
  auto r = run_with_loss(0.10, 2);
  EXPECT_GT(r.injected, 0u);
  EXPECT_GE(r.delivery, 0.90);
}

TEST(FaultInjection, HeavyLossDegradesDelivery) {
  auto clean = run_with_loss(0.0, 3);
  auto lossy = run_with_loss(0.45, 3);
  EXPECT_LT(lossy.delivery, clean.delivery);
  EXPECT_GT(lossy.injected, 50u);
}

TEST(FaultInjection, LossCostsEnergy) {
  // Every lost frame triggers retries: the relay burns measurably more
  // energy under loss for the same offered traffic.
  auto clean = run_with_loss(0.0, 4);
  auto lossy = run_with_loss(0.30, 4);
  EXPECT_GT(lossy.energy_n1, clean.energy_n1 * 1.05);
}

TEST(Determinism, SameSeedSameResults) {
  auto a = run_with_loss(0.2, 42);
  auto b = run_with_loss(0.2, 42);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_DOUBLE_EQ(a.energy_n1, b.energy_n1);
}

TEST(Determinism, DifferentSeedsDiffer) {
  auto a = run_with_loss(0.2, 1);
  auto b = run_with_loss(0.2, 2);
  // Arrival times and losses differ; energies virtually never coincide.
  EXPECT_NE(a.energy_n1, b.energy_n1);
}

TEST(FaultInjection, RejectsInvalidProbability) {
  SimulationConfig cfg;
  Simulation sim(cfg);
  build_chain(sim, 1);
  EXPECT_DEATH(sim.channel().set_loss_probability(1.5), "probability");
}

}  // namespace
}  // namespace edb::sim
