// Behavioural SCP-MAC: scheduled polling delivery, latency, and the
// short-tone energy advantage over LPL preambles.
#include "sim/scpmac_sim.h"

#include <gtest/gtest.h>

#include "sim/bmac_sim.h"
#include "sim/builder.h"
#include "sim/simulation.h"

namespace edb::sim {
namespace {

MacFactory scp_factory(double tp) {
  return [tp](MacEnv env) {
    return std::make_unique<ScpmacSim>(std::move(env),
                                       ScpmacSimParams{.tp = tp});
  };
}

SimulationConfig fast_config(double duration, std::uint64_t seed = 1) {
  SimulationConfig cfg;
  cfg.traffic.fs = 0.02;
  cfg.duration = duration;
  cfg.seed = seed;
  return cfg;
}

TEST(ScpmacSim, DeliversOverOneHop) {
  Simulation sim(fast_config(600));
  build_chain(sim, 1);
  sim.finalize(scp_factory(0.3));
  sim.run();
  EXPECT_GT(sim.metrics().generated(), 5u);
  EXPECT_GE(sim.metrics().delivery_ratio(), 0.99);
}

TEST(ScpmacSim, DeliversOverFourHops) {
  Simulation sim(fast_config(2000, 7));
  build_chain(sim, 4);
  sim.finalize(scp_factory(0.3));
  sim.run();
  EXPECT_GT(sim.metrics().generated(), 50u);
  EXPECT_GE(sim.metrics().delivery_ratio(), 0.95);
}

TEST(ScpmacSim, DelayIsHalfPollPeriodPerHop) {
  const double tp = 0.4;
  Simulation sim(fast_config(3000, 3));
  build_chain(sim, 3);
  sim.finalize(scp_factory(tp));
  sim.run();
  const double measured = sim.metrics().mean_delay_from_depth(3);
  // With independent per-node schedules each hop waits for the parent's
  // next poll — tp/2 on average (the analytic model's assumption).  The
  // chain's fixed phase offsets make individual hops deterministic, so
  // allow a wide band around D * tp/2.
  const double predicted = 3 * tp / 2;
  EXPECT_GT(measured, predicted * 0.5);
  EXPECT_LT(measured, predicted * 1.8);
}

TEST(ScpmacSim, SenderTxTimeIsTonePlusData) {
  SimulationConfig cfg = fast_config(2000, 9);
  cfg.traffic.fs = 0.01;
  Simulation sim(cfg);
  build_chain(sim, 1);
  sim.finalize(scp_factory(0.3));
  sim.run();
  const auto sent = sim.node(1).mac().packets_sent();
  ASSERT_GT(sent, 0u);
  ScpmacSim& mac = static_cast<ScpmacSim&>(sim.node(1).mac());
  const double per_packet = mac.tone_duration() +
                            cfg.packet.data_airtime(cfg.radio);
  const double tx_seconds = sim.node(1).radio().seconds_in(RadioState::kTx);
  EXPECT_NEAR(tx_seconds, sent * per_packet, sent * per_packet * 0.15);
}

TEST(ScpmacSim, TxEnergyFarBelowLplPreambles) {
  // Same wake interval: B-MAC's sender transmits ~tw per packet, SCP only
  // the few-ms tone — the headline result of scheduled channel polling.
  auto sender_tx_time = [](const MacFactory& factory) {
    SimulationConfig cfg;
    cfg.traffic.fs = 0.02;
    cfg.duration = 2000;
    cfg.seed = 11;
    Simulation sim(cfg);
    build_chain(sim, 1);
    sim.finalize(factory);
    sim.run();
    return sim.node(1).radio().seconds_in(RadioState::kTx);
  };
  const double scp = sender_tx_time(scp_factory(0.3));
  const double bmac = sender_tx_time([](MacEnv env) {
    return std::make_unique<BmacSim>(std::move(env),
                                     BmacSimParams{.tw = 0.3});
  });
  EXPECT_LT(scp, 0.2 * bmac);
}

TEST(ScpmacSim, PollsAreScheduled) {
  // One poll per period per node, regardless of each node's phase.
  SimulationConfig cfg = fast_config(1000);
  cfg.traffic.fs = 1e-9;
  Simulation sim(cfg);
  build_chain(sim, 2);
  sim.finalize(scp_factory(0.5));
  sim.run();
  const double l0 = sim.node(0).radio().seconds_in(RadioState::kListen);
  const double l1 = sim.node(1).radio().seconds_in(RadioState::kListen);
  const double l2 = sim.node(2).radio().seconds_in(RadioState::kListen);
  EXPECT_NEAR(l0, l1, 0.05 * l0);
  EXPECT_NEAR(l1, l2, 0.05 * l1);
  const double expected = 1000.0 / 0.5 * cfg.radio.poll_duration();
  EXPECT_NEAR(l1, expected, 0.1 * expected);
}

TEST(ScpmacSim, NoDropsAtModerateLoad) {
  Simulation sim(fast_config(1500, 23));
  build_chain(sim, 3);
  sim.finalize(scp_factory(0.3));
  sim.run();
  for (int id = 1; id <= 3; ++id) {
    EXPECT_EQ(sim.node(id).mac().packets_dropped(), 0u) << id;
  }
}

}  // namespace
}  // namespace edb::sim
