#include "game/alternatives.h"

#include <gtest/gtest.h>

#include <cmath>

#include "game/nbs.h"

namespace edb::game {
namespace {

std::vector<UtilityPoint> linear_frontier(int n = 1001) {
  std::vector<UtilityPoint> pts;
  for (int i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / (n - 1);
    pts.push_back({t, 1.0 - t});
  }
  return pts;
}

TEST(KalaiSmorodinsky, SymmetricProblemGivesEqualSplit) {
  BargainingProblem p(linear_frontier(), {0, 0});
  auto r = kalai_smorodinsky(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->u1, 0.5, 1e-6);
  EXPECT_NEAR(r->u2, 0.5, 1e-6);
}

TEST(KalaiSmorodinsky, EqualRelativeGains) {
  BargainingProblem p(linear_frontier(), {0.2, 0.1});
  auto r = kalai_smorodinsky(p);
  ASSERT_TRUE(r.ok());
  auto ideal = p.ideal_point().take();
  const double g1 = (r->u1 - 0.2) / (ideal.u1 - 0.2);
  const double g2 = (r->u2 - 0.1) / (ideal.u2 - 0.1);
  EXPECT_NEAR(g1, g2, 1e-6);
}

TEST(Egalitarian, EqualAbsoluteGains) {
  BargainingProblem p(linear_frontier(), {0.3, 0.1});
  auto r = egalitarian(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->u1 - 0.3, r->u2 - 0.1, 1e-6);
  // On u1+u2=1 with equal gains: u1 = (1 + 0.3 - 0.1)/2 = 0.6.
  EXPECT_NEAR(r->u1, 0.6, 1e-6);
}

TEST(Utilitarian, PicksTheSumMaximisingVertex) {
  // Asymmetric staircase: (0.9, 0.3) has the largest sum.
  BargainingProblem p({{0.2, 0.8}, {0.5, 0.6}, {0.9, 0.3}}, {0, 0});
  auto r = utilitarian(p);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->u1, 0.9);
}

TEST(Alternatives, AllInfeasibleWithoutRationalPoints) {
  BargainingProblem p(linear_frontier(), {2, 2});
  EXPECT_FALSE(kalai_smorodinsky(p).ok());
  EXPECT_FALSE(egalitarian(p).ok());
  EXPECT_FALSE(utilitarian(p).ok());
}

TEST(Alternatives, CoincideOnSymmetricLinearProblems) {
  // With zero threat on the symmetric linear frontier, NBS, KS and
  // egalitarian all pick the midpoint.
  BargainingProblem p(linear_frontier(), {0, 0});
  auto nbs = nash_bargaining_hull(p).take();
  auto ks = kalai_smorodinsky(p).take();
  auto eg = egalitarian(p).take();
  EXPECT_NEAR(nbs.solution.u1, ks.u1, 1e-6);
  EXPECT_NEAR(ks.u1, eg.u1, 1e-6);
}

TEST(Alternatives, DivergeOnAsymmetricConcaveProblems) {
  // Concave frontier biased toward player 2; with an asymmetric threat the
  // three solutions pick measurably different points.
  std::vector<UtilityPoint> pts;
  for (int i = 0; i <= 1000; ++i) {
    const double t = i / 1000.0;
    pts.push_back({t, std::pow(1.0 - std::pow(t, 3.0), 1.0 / 1.5)});
  }
  BargainingProblem p(std::move(pts), {0.05, 0.0});
  auto nbs = nash_bargaining_hull(p).take();
  auto ks = kalai_smorodinsky(p).take();
  auto ut = utilitarian(p).take();
  EXPECT_GT(std::abs(nbs.solution.u1 - ks.u1) +
                std::abs(nbs.solution.u1 - ut.u1),
            1e-3);
}

TEST(KalaiSmorodinsky, SolutionIsFeasibleAndNearFrontier) {
  BargainingProblem p(linear_frontier(), {0.1, 0.25});
  auto r = kalai_smorodinsky(p).take();
  EXPECT_NEAR(r.u1 + r.u2, 1.0, 1e-6);
  EXPECT_GE(r.u1, 0.1);
  EXPECT_GE(r.u2, 0.25);
}

}  // namespace
}  // namespace edb::game
