// Lane-wrapper semantics (util/simd.h): every lane operation must carry
// exactly the IEEE-754 double the scalar expression produces — asserted
// bit-for-bit in hex-float — plus the no-FMA rule and its end-to-end
// consequence: the three paper kernels' SIMD loops match the scalar
// entry points on every lane, including remainder tails.
#include "util/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "mac/registry.h"

namespace edb {
namespace {

using util::DoubleLanes;
constexpr std::size_t W = DoubleLanes::kWidth;

::testing::AssertionResult bits_eq(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  char buf[128];
  std::snprintf(buf, sizeof buf, "%a != %a", a, b);
  return ::testing::AssertionFailure() << buf;
}

// Values chosen to stress rounding, signed zeros, subnormals and range
// extremes — anywhere a vector unit could plausibly diverge from scalar.
const std::vector<double> kTricky = {
    0.0,        -0.0,      1.0,          -1.0,     0.5,
    1.0 + 0x1p-52,         1.0 - 0x1p-53,          0x1p-1074,
    -0x1p-1074, 1e-308,    1e308,        -1e308,   1.0 / 3.0,
    3.0,        6.02e23,   -2.5e-7,      0.015625, 42.0};

TEST(UtilSimd, BackendAndWidthAreCoherent) {
  RecordProperty("backend", util::simd_backend());
  EXPECT_GE(W, 2u);
  const std::string backend = util::simd_backend();
  EXPECT_TRUE(backend == "avx2" || backend == "neon" || backend == "scalar");
}

TEST(UtilSimd, LoadStoreBroadcastRoundTrip) {
  std::vector<double> buf = kTricky;
  buf.resize(((buf.size() + W - 1) / W) * W, 7.25);
  std::vector<double> out(W);
  for (std::size_t off = 0; off + W <= buf.size(); off += W) {
    const DoubleLanes v = DoubleLanes::load(buf.data() + off);
    v.store(out.data());
    for (std::size_t k = 0; k < W; ++k) {
      EXPECT_TRUE(bits_eq(out[k], buf[off + k])) << "store lane " << k;
      EXPECT_TRUE(bits_eq(v.lane(k), buf[off + k])) << "lane() " << k;
    }
  }
  for (double c : kTricky) {
    const DoubleLanes b = DoubleLanes::broadcast(c);
    for (std::size_t k = 0; k < W; ++k) {
      EXPECT_TRUE(bits_eq(b.lane(k), c)) << "broadcast lane " << k;
    }
  }
}

TEST(UtilSimd, ArithmeticMatchesScalarPerLane) {
  const std::size_t n = kTricky.size();
  std::vector<double> av(W), bv(W);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // Rotate the cases through the lanes so every lane carries a
      // different operand pair on every (i, j) visit.
      for (std::size_t k = 0; k < W; ++k) {
        av[k] = kTricky[(i + k) % n];
        bv[k] = kTricky[(j + k) % n];
      }
      const DoubleLanes a = DoubleLanes::load(av.data());
      const DoubleLanes b = DoubleLanes::load(bv.data());
      for (std::size_t k = 0; k < W; ++k) {
        EXPECT_TRUE(bits_eq((a + b).lane(k), av[k] + bv[k])) << "+";
        EXPECT_TRUE(bits_eq((a - b).lane(k), av[k] - bv[k])) << "-";
        EXPECT_TRUE(bits_eq((a * b).lane(k), av[k] * bv[k])) << "*";
        EXPECT_TRUE(bits_eq((a / b).lane(k), av[k] / bv[k])) << "/";
        EXPECT_TRUE(
            bits_eq(util::min(a, b).lane(k), std::min(av[k], bv[k])))
            << "min";
        EXPECT_TRUE(
            bits_eq(util::max(a, b).lane(k), std::max(av[k], bv[k])))
            << "max";
      }
    }
  }
}

TEST(UtilSimd, MinMaxTiesAndSignedZerosMatchStd) {
  // std::min/std::max are selects — min(a,b) returns a on ties, including
  // the +0/-0 tie where the hardware min/max instructions disagree.
  const double pz = 0.0, nz = -0.0;
  struct Case {
    double a, b;
  };
  for (const Case& c : {Case{pz, nz}, Case{nz, pz}, Case{1.0, 1.0},
                        Case{nz, nz}, Case{pz, pz}}) {
    const DoubleLanes a = DoubleLanes::broadcast(c.a);
    const DoubleLanes b = DoubleLanes::broadcast(c.b);
    for (std::size_t k = 0; k < W; ++k) {
      EXPECT_TRUE(bits_eq(util::min(a, b).lane(k), std::min(c.a, c.b)));
      EXPECT_TRUE(bits_eq(util::max(a, b).lane(k), std::max(c.a, c.b)));
    }
  }
}

TEST(UtilSimd, NoFusedMultiplyAdd) {
  // a*a keeps a 2^-60 tail that separate rounding must drop; an fma
  // would keep it.  Both the lane expression and the scalar reference
  // (compiled with -ffp-contract=off) must round separately.
  const double a = 1.0 + 0x1p-30;
  const double prod = a * a;  // 1 + 2^-29 exactly: the 2^-60 tail rounds off
  EXPECT_EQ(std::fma(a, a, -prod), 0x1p-60);  // the tail an FMA would keep
  EXPECT_TRUE(bits_eq(a * a - prod, 0.0));    // scalar reference: no fuse
  const DoubleLanes r = DoubleLanes::broadcast(a) * DoubleLanes::broadcast(a) -
                        DoubleLanes::broadcast(prod);
  for (std::size_t k = 0; k < W; ++k) {
    EXPECT_TRUE(bits_eq(r.lane(k), 0.0)) << "lane " << k;
  }
}

void expect_kernel_scalar_parity(const mac::ModelContext& ctx,
                                 const std::string& tag) {
  for (const auto& name : mac::paper_protocols()) {
    SCOPED_TRACE(tag);
    auto model = mac::make_model(name, ctx).take();
    ASSERT_EQ(model->params().dim(), 1u) << name;
    const double lo = model->params().lower()[0];
    const double hi = model->params().upper()[0];

    const std::size_t n = 257;
    std::vector<double> xs(n);
    for (std::size_t i = 0; i < n; ++i) {
      xs[i] = lo + (hi - lo) * static_cast<double>(i) /
                       static_cast<double>(n - 1);
    }
    std::vector<double> e(n), l(n), m(n);
    model->evaluate_batch(xs.data(), n, e.data(), l.data(), m.data());
    for (std::size_t i = 0; i < n; ++i) {
      const std::vector<double> x = {xs[i]};
      EXPECT_TRUE(bits_eq(e[i], model->energy(x))) << name << " E @ " << i;
      EXPECT_TRUE(bits_eq(l[i], model->latency(x))) << name << " L @ " << i;
      EXPECT_TRUE(bits_eq(m[i], model->feasibility_margin(x)))
          << name << " margin @ " << i;
    }

    std::vector<double> e2(n - 1), l2(n - 1), m2(n - 1);
    model->evaluate_batch(xs.data() + 1, n - 1, e2.data(), l2.data(),
                          m2.data());
    for (std::size_t i = 0; i + 1 < n; ++i) {
      EXPECT_TRUE(bits_eq(e2[i], e[i + 1])) << name << " offset E @ " << i;
      EXPECT_TRUE(bits_eq(l2[i], l[i + 1])) << name << " offset L @ " << i;
      EXPECT_TRUE(bits_eq(m2[i], m[i + 1])) << name << " offset m @ " << i;
    }
  }
}

TEST(UtilSimd, PaperKernelsMatchScalarEntryPoints) {
  // End-to-end: the SIMD-rewritten X-MAC/DMAC/LMAC batch kernels stay
  // bit-identical to the scalar model calls.  n = 257 exercises full
  // lane blocks plus a remainder tail for every supported width; the
  // off-by-one slice exercises unaligned loads.
  expect_kernel_scalar_parity(mac::ModelContext{}, "kV1");
}

TEST(UtilSimd, KV2QueueingKernelsMatchScalarEntryPoints) {
  // Same end-to-end contract with the M/G/1 term and stability fence
  // live in the lanes, across every arrival shape.
  struct Shape {
    const char* label;
    net::ArrivalProcess arrivals;
    double burst_factor;
    double jitter_frac;
  };
  for (const Shape& s :
       {Shape{"periodic", net::ArrivalProcess::kPeriodic, 1.0, 0.3},
        Shape{"poisson", net::ArrivalProcess::kPoisson, 1.0, 0.1},
        Shape{"bursty", net::ArrivalProcess::kBursty, 8.0, 0.1}}) {
    mac::ModelContext ctx;
    ctx.model_version = mac::ModelVersion::kV2Queueing;
    ctx.arrivals = s.arrivals;
    ctx.burst_factor = s.burst_factor;
    ctx.jitter_frac = s.jitter_frac;
    expect_kernel_scalar_parity(ctx, std::string("kV2/") + s.label);
  }
}

}  // namespace
}  // namespace edb
