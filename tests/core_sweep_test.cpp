#include "core/sweep.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.h"
#include "mac/registry.h"
#include "util/csv.h"

namespace edb::core {
namespace {

class SweepTest : public ::testing::Test {
 protected:
  SweepTest() {
    scenario_ = Scenario::paper_default();
    model_ = mac::make_model("X-MAC", scenario_.context).take();
  }
  Scenario scenario_;
  std::unique_ptr<mac::AnalyticMacModel> model_;
};

TEST_F(SweepTest, Fig1SweepMatchesDirectSolves) {
  auto sweep = paper_fig1_sweep(*model_, scenario_.requirements);
  ASSERT_EQ(sweep.cells.size(), 6u);
  EXPECT_EQ(sweep.protocol, "X-MAC");
  EXPECT_EQ(sweep.feasible_count(), 6u);

  // Spot-check one cell against a direct solve.
  AppRequirements req = scenario_.requirements;
  req.l_max = 2.0;
  EnergyDelayGame game(*model_, req);
  auto direct = game.solve().take();
  ASSERT_TRUE(sweep.cells[1].feasible());
  EXPECT_NEAR(sweep.cells[1].outcome->nbs.energy, direct.nbs.energy, 1e-9);
}

TEST_F(SweepTest, SaturatedTailFindsThePaperCluster) {
  auto sweep = paper_fig1_sweep(*model_, scenario_.requirements);
  const auto tail = sweep.saturated_tail();
  // Fig. 1a: Lmax = 3,4,5,6 coincide -> indices 2..5.
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.front(), 2u);
  EXPECT_EQ(tail.back(), 5u);

  auto budget_sweep = paper_fig2_sweep(*model_, scenario_.requirements);
  const auto budget_tail = budget_sweep.saturated_tail();
  // Fig. 2a: 0.04, 0.05, 0.06 coincide -> indices 3..5.
  ASSERT_EQ(budget_tail.size(), 3u);
  EXPECT_EQ(budget_tail.front(), 3u);
}

TEST_F(SweepTest, NoClusterReportsEmptyTail) {
  auto lmac = mac::make_model("LMAC", scenario_.context).take();
  auto sweep = paper_fig1_sweep(*lmac, scenario_.requirements);
  EXPECT_TRUE(sweep.saturated_tail().empty());
}

TEST_F(SweepTest, InfeasibleCellsCarryAReason) {
  auto lmac = mac::make_model("LMAC", scenario_.context).take();
  auto sweep = paper_fig2_sweep(*lmac, scenario_.requirements);
  EXPECT_EQ(sweep.feasible_count(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(sweep.cells[i].feasible());
    EXPECT_FALSE(sweep.cells[i].infeasible_reason.empty());
  }
}

TEST_F(SweepTest, CustomValuesRespected) {
  auto sweep = run_sweep(*model_, scenario_.requirements, SweepKind::kLmax,
                         {0.8, 1.6, 3.2});
  ASSERT_EQ(sweep.cells.size(), 3u);
  EXPECT_DOUBLE_EQ(sweep.cells[0].value, 0.8);
  EXPECT_DOUBLE_EQ(sweep.cells[2].value, 3.2);
}

TEST_F(SweepTest, TableRendersOneRowPerCell) {
  auto sweep = paper_fig1_sweep(*model_, scenario_.requirements);
  std::ostringstream out;
  print_sweep_table(sweep, out);
  // Header + separator + 6 rows.
  int lines = 0;
  for (char c : out.str()) lines += (c == '\n');
  EXPECT_EQ(lines, 8);
}

TEST_F(SweepTest, CsvRoundTrips) {
  auto lmac = mac::make_model("LMAC", scenario_.context).take();
  auto sweep = paper_fig2_sweep(*lmac, scenario_.requirements);
  std::ostringstream out;
  write_sweep_csv(sweep, out);

  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  const auto header = parse_csv_line(line);
  EXPECT_EQ(header.front(), "protocol");
  int rows = 0, feasible = 0;
  while (std::getline(in, line)) {
    const auto cells = parse_csv_line(line);
    ASSERT_EQ(cells.size(), header.size());
    ++rows;
    if (cells[3] == "1") ++feasible;
  }
  EXPECT_EQ(rows, 6);
  EXPECT_EQ(feasible, 3);
}

TEST_F(SweepTest, SummaryMentionsTheCluster) {
  auto sweep = paper_fig1_sweep(*model_, scenario_.requirements);
  std::ostringstream out;
  print_sweep_summary(sweep, out);
  EXPECT_NE(out.str().find("6/6 cells feasible"), std::string::npos);
  EXPECT_NE(out.str().find("saturated cluster {3, 4, 5, 6}"),
            std::string::npos);
}

TEST(WeightedGame, PowerSweepMovesTheAgreementMonotonically) {
  Scenario scenario = Scenario::paper_default();
  auto model = mac::make_model("DMAC", scenario.context).take();
  EnergyDelayGame game(*model, scenario.requirements);
  double prev_energy = 1e9;
  for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    auto outcome = game.solve_weighted(alpha).take();
    // More energy-player power -> lower E*, higher L*.
    EXPECT_LT(outcome.nbs.energy, prev_energy) << alpha;
    prev_energy = outcome.nbs.energy;
    EXPECT_LE(outcome.nbs.energy, scenario.requirements.e_budget * 1.0001);
    EXPECT_LE(outcome.nbs.latency, scenario.requirements.l_max * 1.0001);
  }
}

TEST(WeightedGame, HalfPowerEqualsPlainSolve) {
  Scenario scenario = Scenario::paper_default();
  auto model = mac::make_model("X-MAC", scenario.context).take();
  EnergyDelayGame game(*model, scenario.requirements);
  auto plain = game.solve().take();
  auto half = game.solve_weighted(0.5).take();
  EXPECT_NEAR(plain.nbs.energy, half.nbs.energy, 1e-9);
  EXPECT_NEAR(plain.nbs.latency, half.nbs.latency, 1e-9);
}

TEST(WeightedGame, RejectsBadAlpha) {
  Scenario scenario = Scenario::paper_default();
  auto model = mac::make_model("X-MAC", scenario.context).take();
  EnergyDelayGame game(*model, scenario.requirements);
  EXPECT_FALSE(game.solve_weighted(0.0).ok());
  EXPECT_FALSE(game.solve_weighted(1.5).ok());
}

}  // namespace
}  // namespace edb::core
