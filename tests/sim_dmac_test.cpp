// Behavioural DMAC: staggered cascade, slot discipline, duty cycling.
#include "sim/dmac_sim.h"

#include <gtest/gtest.h>

#include "sim/builder.h"
#include "sim/simulation.h"

namespace edb::sim {
namespace {

MacFactory dmac_factory(double t_cycle, int max_depth) {
  return [=](MacEnv env) {
    return std::make_unique<DmacSim>(
        std::move(env),
        DmacSimParams{.t_cycle = t_cycle, .max_depth = max_depth});
  };
}

SimulationConfig fast_config(double duration, std::uint64_t seed = 1) {
  SimulationConfig cfg;
  cfg.traffic.fs = 0.02;
  cfg.duration = duration;
  cfg.seed = seed;
  return cfg;
}

TEST(DmacSim, DeliversOverOneHop) {
  Simulation sim(fast_config(500));
  build_chain(sim, 1);
  sim.finalize(dmac_factory(1.0, 1));
  sim.run();
  EXPECT_GT(sim.metrics().generated(), 5u);
  EXPECT_GE(sim.metrics().delivery_ratio(), 0.99);
}

TEST(DmacSim, DeliversOverFiveHops) {
  Simulation sim(fast_config(2000, 7));
  build_chain(sim, 5);
  sim.finalize(dmac_factory(2.0, 5));
  sim.run();
  EXPECT_GT(sim.metrics().generated(), 100u);
  EXPECT_GE(sim.metrics().delivery_ratio(), 0.95);
}

TEST(DmacSim, PacketCascadesWithinOneCycle) {
  // The staggered schedule forwards a packet one slot per hop: e2e delay
  // is the wait for the source's tx slot (<= T) plus D slots, so the mean
  // must sit near T/2 + D*mu, far below the naive D*T.
  const double t_cycle = 2.0;
  Simulation sim(fast_config(4000, 3));
  build_chain(sim, 4);
  sim.finalize(dmac_factory(t_cycle, 4));
  sim.run();
  const double measured = sim.metrics().mean_delay_from_depth(4);
  // mu ~ 9.5 ms with default packets.
  const double predicted = t_cycle / 2 + 4 * 0.0095;
  EXPECT_GT(measured, predicted * 0.5);
  EXPECT_LT(measured, predicted * 1.5);
  EXPECT_LT(measured, 2.0 * t_cycle);  // decisively below D*T
}

TEST(DmacSim, DutyCycleMatchesTwoSlotsPerCycle) {
  // Idle network: every node holds rx + tx slots open each cycle.
  SimulationConfig cfg = fast_config(2000);
  cfg.traffic.fs = 1e-9;
  Simulation sim(cfg);
  build_chain(sim, 2);
  sim.finalize(dmac_factory(1.0, 2));
  sim.run();
  DmacSim& mac = static_cast<DmacSim&>(sim.node(1).mac());
  const double expected = 2.0 * mac.slot_width() / 1.0 * cfg.duration;
  EXPECT_NEAR(sim.node(1).radio().seconds_in(RadioState::kListen), expected,
              expected * 0.1);
}

TEST(DmacSim, SinkHoldsOnlyTheReceiveSlot) {
  SimulationConfig cfg = fast_config(2000);
  cfg.traffic.fs = 1e-9;
  Simulation sim(cfg);
  build_chain(sim, 1);
  sim.finalize(dmac_factory(1.0, 1));
  sim.run();
  DmacSim& mac = static_cast<DmacSim&>(sim.node(0).mac());
  const double expected = mac.slot_width() / 1.0 * cfg.duration;
  EXPECT_NEAR(sim.node(0).radio().seconds_in(RadioState::kListen), expected,
              expected * 0.1);
}

TEST(DmacSim, StaggeredOffsetsFollowDepth) {
  SimulationConfig cfg = fast_config(10);
  Simulation sim(cfg);
  build_chain(sim, 3);
  sim.finalize(dmac_factory(1.0, 3));
  DmacSim& leaf = static_cast<DmacSim&>(sim.node(3).mac());
  DmacSim& mid = static_cast<DmacSim&>(sim.node(2).mac());
  // Deeper nodes wake earlier in the cycle; the leaf's tx slot is exactly
  // its parent's rx slot.
  EXPECT_LT(leaf.rx_offset(), mid.rx_offset());
  EXPECT_DOUBLE_EQ(leaf.tx_offset(), mid.rx_offset());
}

TEST(DmacSim, LongerCycleCutsIdleEnergy) {
  auto idle_power = [](double t_cycle) {
    SimulationConfig cfg = fast_config(3000);
    cfg.traffic.fs = 1e-9;
    Simulation sim(cfg);
    build_chain(sim, 1);
    sim.finalize(dmac_factory(t_cycle, 1));
    sim.run();
    return sim.node_energy(1) / cfg.duration;
  };
  EXPECT_LT(idle_power(4.0), 0.5 * idle_power(1.0));
}

TEST(DmacSim, NoDropsAtModerateLoad) {
  Simulation sim(fast_config(1000, 23));
  build_chain(sim, 3);
  sim.finalize(dmac_factory(1.0, 3));
  sim.run();
  for (int id = 1; id <= 3; ++id) {
    EXPECT_EQ(sim.node(id).mac().packets_dropped(), 0u) << id;
  }
}

}  // namespace
}  // namespace edb::sim
