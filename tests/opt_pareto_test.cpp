#include "opt/pareto.h"

#include <gtest/gtest.h>

#include <cmath>

namespace edb::opt {
namespace {

TEST(Dominates, StrictAndWeak) {
  ParetoPoint a{{0}, 1.0, 1.0};
  ParetoPoint b{{0}, 2.0, 2.0};
  ParetoPoint c{{0}, 1.0, 2.0};
  EXPECT_TRUE(dominates(a, b));
  EXPECT_TRUE(dominates(a, c));
  EXPECT_FALSE(dominates(b, a));
  EXPECT_FALSE(dominates(a, a));  // equal points do not dominate
}

TEST(ParetoFilter, RemovesDominatedPoints) {
  std::vector<ParetoPoint> pts = {
      {{0}, 1.0, 5.0}, {{0}, 2.0, 3.0}, {{0}, 3.0, 4.0},  // dominated
      {{0}, 4.0, 1.0}, {{0}, 5.0, 2.0},                    // dominated
  };
  auto front = pareto_filter(pts);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_DOUBLE_EQ(front[0].f1, 1.0);
  EXPECT_DOUBLE_EQ(front[1].f1, 2.0);
  EXPECT_DOUBLE_EQ(front[2].f1, 4.0);
}

TEST(ParetoFilter, SortedByF1WithDescendingF2) {
  std::vector<ParetoPoint> pts;
  for (int i = 0; i < 50; ++i) {
    const double t = i / 49.0;
    pts.push_back({{t}, t, 1.0 - t});
  }
  auto front = pareto_filter(pts);
  EXPECT_EQ(front.size(), 50u);
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].f1, front[i - 1].f1);
    EXPECT_LT(front[i].f2, front[i - 1].f2);
  }
}

TEST(ParetoFilter, DuplicatesCollapse) {
  std::vector<ParetoPoint> pts = {{{0}, 1.0, 1.0}, {{0}, 1.0, 1.0}};
  EXPECT_EQ(pareto_filter(pts).size(), 1u);
}

TEST(TraceFrontier, HyperbolicTradeoffIsFullyNonDominated) {
  // f1 = x, f2 = 1/x: every feasible point is on the frontier.
  Box box({0.1}, {10.0});
  auto front = trace_frontier(
      [](const std::vector<double>& x) { return x[0]; },
      [](const std::vector<double>& x) { return 1.0 / x[0]; }, box, nullptr,
      {.points_per_dim = 101});
  EXPECT_EQ(front.size(), 101u);
}

TEST(TraceFrontier, FeasibilityFilterApplied) {
  Box box({0.0}, {1.0});
  auto front = trace_frontier(
      [](const std::vector<double>& x) { return x[0]; },
      [](const std::vector<double>& x) { return 1.0 - x[0]; }, box,
      [](const std::vector<double>& x) { return x[0] - 0.5; },  // x > 0.5
      {.points_per_dim = 101});
  for (const auto& p : front) {
    EXPECT_GT(p.x[0], 0.5);
  }
  EXPECT_FALSE(front.empty());
}

TEST(TraceFrontier, UShapedObjectiveProducesPartialFrontier) {
  // f1 = (x-0.5)^2 (U-shaped), f2 = x: only x <= 0.5 is non-dominated
  // (beyond the minimum both objectives increase).
  Box box({0.0}, {1.0});
  auto front = trace_frontier(
      [](const std::vector<double>& x) {
        return (x[0] - 0.5) * (x[0] - 0.5);
      },
      [](const std::vector<double>& x) { return x[0]; }, box, nullptr,
      {.points_per_dim = 101});
  for (const auto& p : front) {
    EXPECT_LE(p.x[0], 0.5 + 1e-9);
  }
}

}  // namespace
}  // namespace edb::opt
