// Cross-protocol property tests, parameterised over every registered MAC
// model.  These pin down the structural invariants the game framework
// relies on: positive smooth metrics, correct breakdown accounting, the
// bottleneck ring, monotone latency, and the protocol energy ordering the
// paper's figure axes encode.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "mac/registry.h"
#include "util/math.h"

namespace edb::mac {
namespace {

class MacPropertyTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    model_ = make_model(GetParam(), ModelContext{}).take();
  }

  // A handful of representative points across the parameter box.
  std::vector<std::vector<double>> probe_points() const {
    const auto lo = model_->params().lower();
    const auto hi = model_->params().upper();
    std::vector<std::vector<double>> pts;
    for (double t : {0.02, 0.25, 0.5, 0.75, 0.98}) {
      std::vector<double> x(lo.size());
      for (std::size_t i = 0; i < lo.size(); ++i) {
        x[i] = lo[i] + t * (hi[i] - lo[i]);
      }
      pts.push_back(std::move(x));
    }
    return pts;
  }

  std::unique_ptr<AnalyticMacModel> model_;
};

TEST_P(MacPropertyTest, MetricsArePositiveAndFinite) {
  for (const auto& x : probe_points()) {
    const double e = model_->energy(x);
    const double l = model_->latency(x);
    EXPECT_TRUE(std::isfinite(e)) << GetParam();
    EXPECT_TRUE(std::isfinite(l));
    EXPECT_GT(e, 0.0);
    EXPECT_GT(l, 0.0);
  }
}

TEST_P(MacPropertyTest, BreakdownTermsAreNonNegativeAndSumToTotal) {
  for (const auto& x : probe_points()) {
    for (int d = 1; d <= model_->context().ring.depth; ++d) {
      const auto p = model_->power_at_ring(x, d);
      EXPECT_GE(p.cs, 0.0);
      EXPECT_GE(p.tx, 0.0);
      EXPECT_GE(p.rx, 0.0);
      EXPECT_GE(p.ovr, 0.0);
      EXPECT_GE(p.stx, 0.0);
      EXPECT_GE(p.srx, 0.0);
      EXPECT_GE(p.sleep, 0.0);
      EXPECT_NEAR(p.total(),
                  p.cs + p.tx + p.rx + p.ovr + p.stx + p.srx + p.sleep,
                  1e-15);
    }
  }
}

TEST_P(MacPropertyTest, EnergyBreakdownScalesPowerByEpoch) {
  const auto x = model_->params().midpoint();
  const auto pw = model_->power_at_ring(x, 1);
  const auto eb = model_->energy_breakdown(x, 1);
  const double epoch = model_->context().energy_epoch;
  EXPECT_NEAR(eb.cs, pw.cs * epoch, 1e-12);
  EXPECT_NEAR(eb.total(), pw.total() * epoch, 1e-9);
}

TEST_P(MacPropertyTest, BottleneckIsTheInnermostRing) {
  // Ring 1 funnels the whole network's traffic; with uniform duty-cycle
  // costs it must be the max-power ring.  WiseMAC is the exception by
  // design: outer rings exchange packets rarely, so their schedule
  // estimates go stale and their drift-sized preambles grow toward the
  // full sampling period — the bottleneck can sit at any ring.
  if (GetParam() == "WiseMAC") {
    for (const auto& x : probe_points()) {
      const int b = model_->bottleneck_ring(x);
      EXPECT_GE(b, 1);
      EXPECT_LE(b, model_->context().ring.depth);
    }
    return;
  }
  for (const auto& x : probe_points()) {
    EXPECT_EQ(model_->bottleneck_ring(x), 1) << GetParam();
  }
}

TEST_P(MacPropertyTest, LatencyIsMonotoneInTheDutyCycleParameter) {
  // Vary the first parameter (the sleep-cycle knob in every model) with
  // any remaining parameters pinned at the box midpoint.
  const auto lo = model_->params().lower();
  const auto hi = model_->params().upper();
  double prev = -kInf;
  for (double t : {0.02, 0.25, 0.5, 0.75, 0.98}) {
    auto x = model_->params().midpoint();
    x[0] = lo[0] + t * (hi[0] - lo[0]);
    const double l = model_->latency(x);
    EXPECT_GT(l, prev) << GetParam();
    prev = l;
  }
}

TEST_P(MacPropertyTest, LatencyGrowsLinearlyWithDepth) {
  ModelContext shallow;
  shallow.ring.depth = 2;
  ModelContext deep;
  deep.ring.depth = 8;
  auto m_shallow = make_model(GetParam(), shallow).take();
  auto m_deep = make_model(GetParam(), deep).take();
  const auto x = m_shallow->params().midpoint();
  const double per_hop_s =
      (m_shallow->latency(x) - m_shallow->source_wait(x)) / 2.0;
  const double per_hop_d =
      (m_deep->latency(x) - m_deep->source_wait(x)) / 8.0;
  if (GetParam() == "WiseMAC") {
    // WiseMAC's drift-sized preamble varies with each ring's link rate, so
    // per-hop latency is only approximately depth-independent.
    EXPECT_NEAR(per_hop_s, per_hop_d, 0.3 * per_hop_s) << GetParam();
  } else {
    EXPECT_NEAR(per_hop_s, per_hop_d, 1e-9) << GetParam();
  }
}

TEST_P(MacPropertyTest, EnergyNondecreasingInSamplingRate) {
  ModelContext quiet;
  quiet.fs = 2e-5;
  ModelContext busy;
  busy.fs = 2e-4;
  auto m_quiet = make_model(GetParam(), quiet).take();
  auto m_busy = make_model(GetParam(), busy).take();
  const auto x = m_quiet->params().midpoint();
  if (GetParam() == "WiseMAC") {
    // WiseMAC inverts this: more traffic keeps schedule estimates fresh,
    // shrinking the drift-sized preamble — total preamble power saturates
    // at 4*theta*Ptx while the quiet network pays full-length preambles.
    // The invariant that does hold: energy stays positive and bounded.
    EXPECT_GT(m_busy->energy(x), 0.0);
    EXPECT_LT(m_busy->energy(x), 10.0 * m_quiet->energy(x));
    return;
  }
  EXPECT_GE(m_busy->energy(x), m_quiet->energy(x)) << GetParam();
}

TEST_P(MacPropertyTest, FeasibilityMarginIsPositiveAtPaperLoad) {
  for (const auto& x : probe_points()) {
    // LMAC's upper box corner exceeds frame capacity only at much higher
    // loads; at the paper calibration every probe point is feasible.
    EXPECT_GT(model_->feasibility_margin(x), 0.0) << GetParam();
  }
}

TEST_P(MacPropertyTest, SmoothnessNoJumpsAcrossTheBox) {
  // Energy and latency must be continuous: scan with a fine step and bound
  // the relative jump between adjacent samples.
  const auto lo = model_->params().lower();
  const auto hi = model_->params().upper();
  const int n = 2000;
  double prev_e = kNaN, prev_l = kNaN;
  for (int i = 0; i <= n; ++i) {
    std::vector<double> x(lo.size());
    for (std::size_t k = 0; k < lo.size(); ++k) {
      x[k] = lo[k] + (hi[k] - lo[k]) * i / n;
    }
    const double e = model_->energy(x);
    const double l = model_->latency(x);
    if (i > 0) {
      // 15% bounds the worst hyperbolic edge (LMAC/B-MAC near their lower
      // box corner at this step size); a discontinuity would show as O(1).
      EXPECT_LT(rel_diff(e, prev_e), 0.15) << GetParam() << " step " << i;
      EXPECT_LT(rel_diff(l, prev_l), 0.15);
    }
    prev_e = e;
    prev_l = l;
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, MacPropertyTest,
                         ::testing::Values("X-MAC", "DMAC", "LMAC", "B-MAC",
                                           "SCP-MAC", "S-MAC", "WiseMAC"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// Protocol ordering at equal delay bounds (the paper's figure axes:
// X-MAC <= 0.04 J, DMAC <= 0.06 J, LMAC <= 0.25 J).
TEST(ProtocolOrdering, EnergyAtEqualDelayXmacBeatsDmacBeatsLmac) {
  ModelContext ctx;
  auto xmac = make_model("X-MAC", ctx).take();
  auto dmac = make_model("DMAC", ctx).take();
  auto lmac = make_model("LMAC", ctx).take();

  auto energy_at_delay = [](AnalyticMacModel& m, double target_l) {
    // Invert the (monotone) latency numerically.
    const auto lo = m.params().lower();
    const auto hi = m.params().upper();
    double a = lo[0], b = hi[0];
    for (int i = 0; i < 100; ++i) {
      const double mid = 0.5 * (a + b);
      if (m.latency({mid}) < target_l) {
        a = mid;
      } else {
        b = mid;
      }
    }
    return m.energy({0.5 * (a + b)});
  };

  // Ordering holds through the paper's binding region (Lmax = 1..4 s);
  // beyond ~5 s X-MAC's growing preamble cost lets DMAC catch up, which is
  // also why the DMAC trade-off points crowd toward low energy in Fig. 1b.
  for (double l : {1.0, 2.0, 3.0, 4.0}) {
    const double ex = energy_at_delay(*xmac, l);
    const double ed = energy_at_delay(*dmac, l);
    const double el = energy_at_delay(*lmac, l);
    EXPECT_LT(ex, ed) << "L=" << l;
    EXPECT_LT(ed, el) << "L=" << l;
  }
}

}  // namespace
}  // namespace edb::mac
