#include "sim/channel.h"

#include <gtest/gtest.h>

#include <vector>

namespace edb::sim {
namespace {

// Records every delivered frame.
class RecordingSink : public FrameSink {
 public:
  void on_frame(const Frame& frame) override { frames.push_back(frame); }
  std::vector<Frame> frames;
};

class ChannelTest : public ::testing::Test {
 protected:
  ChannelTest() : channel_(scheduler_, /*comm_range=*/1.5) {}

  // Adds a node at (x, y); returns its index.
  int add(double x, double y) {
    const int id = static_cast<int>(radios_.size());
    radios_.push_back(std::make_unique<Radio>(net::RadioParams::cc2420()));
    sinks_.push_back(std::make_unique<RecordingSink>());
    channel_.add_node(id, x, y, radios_.back().get());
    channel_.set_sink(id, sinks_.back().get());
    return id;
  }

  void listen(int id) {
    radios_[id]->set_state(RadioState::kListen, scheduler_.now());
  }

  Frame data_frame(int src, int dst) {
    Frame f;
    f.type = FrameType::kData;
    f.src = src;
    f.dst = dst;
    f.bits = 384;
    f.packet = Packet{1, src, 0.0, 0};
    return f;
  }

  Scheduler scheduler_;
  Channel channel_;
  std::vector<std::unique_ptr<Radio>> radios_;
  std::vector<std::unique_ptr<RecordingSink>> sinks_;
};

TEST_F(ChannelTest, DeliversToListeningNeighbour) {
  const int a = add(0, 0);
  const int b = add(1, 0);
  channel_.freeze();
  listen(b);
  channel_.transmit(a, data_frame(a, b), 0.001);
  scheduler_.run_until(1.0);
  ASSERT_EQ(sinks_[b]->frames.size(), 1u);
  EXPECT_EQ(sinks_[b]->frames[0].src, a);
}

TEST_F(ChannelTest, OutOfRangeNodeHearsNothing) {
  const int a = add(0, 0);
  const int far = add(10, 0);
  channel_.freeze();
  listen(far);
  channel_.transmit(a, data_frame(a, far), 0.001);
  scheduler_.run_until(1.0);
  EXPECT_TRUE(sinks_[far]->frames.empty());
}

TEST_F(ChannelTest, SleepingNodeMissesTheFrame) {
  const int a = add(0, 0);
  const int b = add(1, 0);
  channel_.freeze();
  // b's radio stays in kSleep.
  channel_.transmit(a, data_frame(a, b), 0.001);
  scheduler_.run_until(1.0);
  EXPECT_TRUE(sinks_[b]->frames.empty());
}

TEST_F(ChannelTest, WakingMidFrameMissesIt) {
  const int a = add(0, 0);
  const int b = add(1, 0);
  channel_.freeze();
  channel_.transmit(a, data_frame(a, b), 0.010);
  scheduler_.schedule_at(0.005, [&] { listen(b); });
  scheduler_.run_until(1.0);
  EXPECT_TRUE(sinks_[b]->frames.empty());
}

TEST_F(ChannelTest, SleepingMidFrameLosesIt) {
  const int a = add(0, 0);
  const int b = add(1, 0);
  channel_.freeze();
  listen(b);
  channel_.transmit(a, data_frame(a, b), 0.010);
  scheduler_.schedule_at(0.005, [&] {
    radios_[b]->set_state(RadioState::kSleep, scheduler_.now());
  });
  scheduler_.run_until(1.0);
  EXPECT_TRUE(sinks_[b]->frames.empty());
}

TEST_F(ChannelTest, OverlappingTransmissionsCollideAtTheReceiver) {
  const int a = add(0, 0);
  const int b = add(1, 0);
  const int c = add(2, 0);  // in range of b, not of a
  channel_.freeze();
  listen(b);
  channel_.transmit(a, data_frame(a, b), 0.010);
  scheduler_.schedule_at(0.002, [&] {
    channel_.transmit(c, data_frame(c, b), 0.010);
  });
  scheduler_.run_until(1.0);
  EXPECT_TRUE(sinks_[b]->frames.empty());
  EXPECT_GE(channel_.collisions(), 1u);
}

TEST_F(ChannelTest, HiddenTerminalOnlyHurtsTheSharedReceiver) {
  // a and c cannot hear each other; both reach b.  A fourth node d only in
  // range of c still receives c's frame.
  const int a = add(0, 0);
  const int b = add(1.2, 0);
  const int c = add(2.4, 0);
  const int d = add(3.4, 0);
  channel_.freeze();
  listen(b);
  listen(d);
  channel_.transmit(a, data_frame(a, b), 0.010);
  channel_.transmit(c, data_frame(c, d), 0.010);
  scheduler_.run_until(1.0);
  EXPECT_TRUE(sinks_[b]->frames.empty());   // collided at b
  ASSERT_EQ(sinks_[d]->frames.size(), 1u);  // clean at d
  EXPECT_EQ(sinks_[d]->frames[0].src, c);
}

TEST_F(ChannelTest, BusyNearReflectsActiveTransmissions) {
  const int a = add(0, 0);
  const int b = add(1, 0);
  const int far = add(10, 0);
  channel_.freeze();
  EXPECT_FALSE(channel_.busy_near(b));
  channel_.transmit(a, data_frame(a, b), 0.010);
  EXPECT_TRUE(channel_.busy_near(b));
  EXPECT_FALSE(channel_.busy_near(far));
  scheduler_.run_until(1.0);
  EXPECT_FALSE(channel_.busy_near(b));
}

TEST_F(ChannelTest, BroadcastReachesAllListeners) {
  const int a = add(0, 0);
  const int b = add(1, 0);
  const int c = add(0, 1);
  channel_.freeze();
  listen(b);
  listen(c);
  Frame f = data_frame(a, kBroadcast);
  f.type = FrameType::kCtrl;
  channel_.transmit(a, f, 0.001);
  scheduler_.run_until(1.0);
  EXPECT_EQ(sinks_[b]->frames.size(), 1u);
  EXPECT_EQ(sinks_[c]->frames.size(), 1u);
}

TEST_F(ChannelTest, NeighbourListsAreSymmetricAndRangeLimited) {
  const int a = add(0, 0);
  const int b = add(1, 0);
  const int far = add(5, 0);
  channel_.freeze();
  EXPECT_EQ(channel_.neighbours(a), (std::vector<int>{b}));
  EXPECT_EQ(channel_.neighbours(b), (std::vector<int>{a}));
  EXPECT_TRUE(channel_.neighbours(far).empty());
}

TEST_F(ChannelTest, FrameCountersAdvance) {
  const int a = add(0, 0);
  const int b = add(1, 0);
  channel_.freeze();
  listen(b);
  channel_.transmit(a, data_frame(a, b), 0.001);
  scheduler_.run_until(1.0);
  EXPECT_EQ(channel_.frames_sent(), 1u);
  EXPECT_EQ(channel_.collisions(), 0u);
}

}  // namespace
}  // namespace edb::sim
