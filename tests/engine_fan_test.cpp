#include "engine/fan.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

namespace edb::engine {
namespace {

TEST(Fan, ResultsLandInIndexOrderUnderAnyExecutor) {
  const auto fn = std::function<std::string(std::size_t)>(
      [](std::size_t i) { return "job-" + std::to_string(i * i); });

  SequentialExecutor seq;
  ParallelExecutor par(4);
  const auto a = fan<std::string>(seq, 17, fn);
  const auto b = fan<std::string>(par, 17, fn);
  ASSERT_EQ(a.size(), 17u);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a[3], "job-9");
}

TEST(Fan, RunsEveryJobExactlyOnce) {
  std::vector<std::atomic<int>> hits(103);
  ParallelExecutor par(8);
  fan_apply(par, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Fan, WorksWithNonDefaultConstructibleResults) {
  struct NoDefault {
    explicit NoDefault(int v) : value(v) {}
    int value;
  };
  SequentialExecutor seq;
  auto out = fan<NoDefault>(
      seq, 5, std::function<NoDefault(std::size_t)>([](std::size_t i) {
        return NoDefault(static_cast<int>(i) + 10);
      }));
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[4].value, 14);
}

TEST(Fan, ReduceFoldsInIndexOrder) {
  // Merge order matters for string concatenation: only the strict
  // index-order fold produces this value, whatever the executor did.
  ParallelExecutor par(4);
  const auto folded = fan_reduce<std::string, std::string>(
      par, 6,
      std::function<std::string(std::size_t)>(
          [](std::size_t i) { return std::to_string(i); }),
      std::string(),
      std::function<void(std::string&, const std::string&)>(
          [](std::string& acc, const std::string& r) { acc += r; }));
  EXPECT_EQ(folded, "012345");
}

TEST(Fan, JobSeedsAreStableAndDecorrelated) {
  // Pure in (base, key): same inputs, same stream.
  EXPECT_EQ(job_seed(1, 42), job_seed(1, 42));
  // Distinct in every argument.
  EXPECT_NE(job_seed(1, 42), job_seed(1, 43));
  EXPECT_NE(job_seed(1, 42), job_seed(2, 42));
  // Consecutive keys give well-mixed (not consecutive) seeds.
  const std::uint64_t a = job_seed(7, 0);
  const std::uint64_t b = job_seed(7, 1);
  EXPECT_GT((a > b ? a - b : b - a), 1u << 20);
}

TEST(Fan, MakeExecutorHonoursParallelFlag) {
  auto seq = make_executor(4, false);
  auto par = make_executor(2, true);
  EXPECT_STREQ(seq->name(), "sequential");
  EXPECT_STREQ(par->name(), "parallel");
  EXPECT_EQ(static_cast<ParallelExecutor*>(par.get())->threads(), 2);
}

TEST(Fan, TimedReportsJobCount) {
  SequentialExecutor seq;
  const FanStats stats = fan_timed(seq, 9, [](std::size_t) {});
  EXPECT_EQ(stats.jobs, 9u);
  EXPECT_GE(stats.elapsed_ms, 0.0);
}

}  // namespace
}  // namespace edb::engine
