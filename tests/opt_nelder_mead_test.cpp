#include "opt/nelder_mead.h"

#include <gtest/gtest.h>

#include <cmath>

namespace edb::opt {
namespace {

TEST(NelderMead, Quadratic1D) {
  Box box({-10.0}, {10.0});
  auto r = nelder_mead_min([](const std::vector<double>& x) {
    return (x[0] - 2.0) * (x[0] - 2.0);
  }, box, {0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
}

TEST(NelderMead, Rosenbrock2D) {
  Box box({-5.0, -5.0}, {5.0, 5.0});
  auto r = nelder_mead_min([](const std::vector<double>& x) {
    const double a = 1 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100 * b * b;
  }, box, {-1.0, 1.0}, {.max_iterations = 5000});
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(NelderMead, RespectsBoxWhenMinimumIsOutside) {
  // Unconstrained minimum at (3, 3); box caps at 1.
  Box box({0.0, 0.0}, {1.0, 1.0});
  auto r = nelder_mead_min([](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] - 3.0) * (x[1] - 3.0);
  }, box, {0.5, 0.5});
  EXPECT_TRUE(box.contains(r.x));
  EXPECT_NEAR(r.x[0], 1.0, 1e-5);
  EXPECT_NEAR(r.x[1], 1.0, 1e-5);
}

TEST(NelderMead, StartAtBoundaryStillMoves) {
  Box box({0.0}, {1.0});
  auto r = nelder_mead_min([](const std::vector<double>& x) {
    return (x[0] - 0.4) * (x[0] - 0.4);
  }, box, {1.0});
  EXPECT_NEAR(r.x[0], 0.4, 1e-6);
}

TEST(NelderMead, FourDimensionalSphere) {
  Box box({-2, -2, -2, -2}, {2, 2, 2, 2});
  auto r = nelder_mead_min([](const std::vector<double>& x) {
    double s = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - 0.3 * (static_cast<double>(i) + 1);
      s += d * d;
    }
    return s;
  }, box, {1, 1, 1, 1}, {.max_iterations = 5000});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(r.x[i], 0.3 * (static_cast<double>(i) + 1), 1e-4);
  }
}

TEST(NelderMead, PiecewiseSmoothPenaltyShape) {
  // The exact shape the penalty solver feeds it: smooth objective plus a
  // one-sided quadratic wall.
  Box box({0.0}, {10.0});
  auto r = nelder_mead_min([](const std::vector<double>& x) {
    const double viol = std::max(0.0, 4.0 - x[0]);  // constraint x >= 4
    return x[0] + 1e4 * viol * viol;
  }, box, {8.0});
  EXPECT_NEAR(r.x[0], 4.0, 1e-2);
}

TEST(NelderMead, ReportsEvaluationCount) {
  Box box({-1.0}, {1.0});
  auto r = nelder_mead_min([](const std::vector<double>& x) {
    return x[0] * x[0];
  }, box, {0.5});
  EXPECT_GT(r.evaluations, 2);
  EXPECT_LT(r.evaluations, 2500);
}

}  // namespace
}  // namespace edb::opt
