#include "util/fault.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <vector>

namespace edb::fault {
namespace {

// Every test leaves the process with no active plan: injection is global
// state shared with every other test binary run in this process.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { uninstall(); }
};

TEST_F(FaultTest, ParsesFullSpec) {
  auto plan = FaultPlan::parse(
      "seed=42;engine.job:fail=0.01;"
      "planner.solve:fail=0.01,stall=0.005@2ms,crash=0.001");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->seed(), 42u);
  ASSERT_EQ(plan->sites().size(), 2u);
  EXPECT_EQ(plan->sites()[0].site, "engine.job");
  EXPECT_DOUBLE_EQ(plan->sites()[0].fail, 0.01);
  EXPECT_DOUBLE_EQ(plan->sites()[0].stall, 0.0);
  EXPECT_EQ(plan->sites()[1].site, "planner.solve");
  EXPECT_DOUBLE_EQ(plan->sites()[1].fail, 0.01);
  EXPECT_DOUBLE_EQ(plan->sites()[1].stall, 0.005);
  EXPECT_DOUBLE_EQ(plan->sites()[1].stall_ms, 2.0);
  EXPECT_DOUBLE_EQ(plan->sites()[1].crash, 0.001);
}

TEST_F(FaultTest, EmptySpecIsAnEmptyPlan) {
  auto plan = FaultPlan::parse("");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->seed(), 0u);
  EXPECT_TRUE(plan->sites().empty());
  EXPECT_FALSE(plan->evaluate("engine.job", 7).fires());
}

TEST_F(FaultTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "seed=banana",                    // unparsable seed
      "engine.job",                     // no kind list
      ":fail=0.1",                      // empty site
      "engine.job:explode=0.1",         // unknown kind
      "engine.job:fail=1.5",            // rate past 1
      "engine.job:fail=-0.1",           // negative rate
      "engine.job:fail",                // no '='
      "engine.job:fail=0.6,stall=0.6",  // per-site sum past 1
      "engine.job:fail=0.1@2ms",        // duration on a non-stall kind
      "engine.job:stall=0.1@2s",        // duration not in ms
      "engine.job:stall=0.1@xms",       // unparsable duration
  };
  for (const char* spec : bad) {
    auto plan = FaultPlan::parse(spec);
    ASSERT_FALSE(plan.ok()) << spec;
    EXPECT_EQ(plan.error().code, ErrorCode::kInvalidArgument) << spec;
  }
}

TEST_F(FaultTest, EvaluateIsPureAndDeterministic) {
  auto plan = FaultPlan::parse(
                  "seed=7;a.site:fail=0.2,stall=0.2@3ms,crash=0.2")
                  .take();
  for (std::uint64_t key = 0; key < 512; ++key) {
    const Action first = plan.evaluate("a.site", key);
    const Action again = plan.evaluate("a.site", key);
    EXPECT_EQ(first.kind, again.kind);
    EXPECT_EQ(first.stall_ms, again.stall_ms);
    if (first.kind == Kind::kStall) {
      EXPECT_DOUBLE_EQ(first.stall_ms, 3.0);
    }
  }
  // A fresh parse of the same spec replays the same stream.
  auto twin = FaultPlan::parse(
                  "seed=7;a.site:fail=0.2,stall=0.2@3ms,crash=0.2")
                  .take();
  for (std::uint64_t key = 0; key < 512; ++key) {
    EXPECT_EQ(plan.evaluate("a.site", key).kind,
              twin.evaluate("a.site", key).kind);
  }
}

TEST_F(FaultTest, PerSiteStreamsAreIndependent) {
  // Site A's firing pattern must not move when site B's rates change —
  // each site draws from its own (seed ^ hash(site)) stream.
  auto small = FaultPlan::parse("seed=9;a.site:fail=0.3;b.site:fail=0.1")
                   .take();
  auto large = FaultPlan::parse("seed=9;a.site:fail=0.3;b.site:fail=0.9")
                   .take();
  std::set<std::uint64_t> a_fires, b_fires;
  for (std::uint64_t key = 0; key < 2048; ++key) {
    EXPECT_EQ(small.evaluate("a.site", key).kind,
              large.evaluate("a.site", key).kind);
    if (small.evaluate("a.site", key).fires()) a_fires.insert(key);
    if (small.evaluate("b.site", key).fires()) b_fires.insert(key);
  }
  // And the two sites' firing sets differ (the streams are distinct).
  EXPECT_NE(a_fires, b_fires);
  EXPECT_FALSE(a_fires.empty());
  EXPECT_FALSE(b_fires.empty());
}

TEST_F(FaultTest, AttemptRerollsTheDecision) {
  auto plan = FaultPlan::parse("a.site:fail=0.5").take();
  // Some key that fails at attempt 0 must pass at a later attempt: at
  // rate 0.5 the odds every one of 8 attempts fails are 1/256 per key.
  bool some_recovered = false;
  for (std::uint64_t key = 0; key < 64 && !some_recovered; ++key) {
    if (!plan.evaluate("a.site", key, 0).fires()) continue;
    for (std::uint32_t attempt = 1; attempt < 8; ++attempt) {
      if (!plan.evaluate("a.site", key, attempt).fires()) {
        some_recovered = true;
        break;
      }
    }
  }
  EXPECT_TRUE(some_recovered);
}

TEST_F(FaultTest, EmpiricalRatesMatchTheSpec) {
  auto plan =
      FaultPlan::parse("seed=3;a.site:fail=0.1,stall=0.05,crash=0.02")
          .take();
  const int n = 200000;
  int fail = 0, stall = 0, crash = 0;
  for (std::uint64_t key = 0; key < n; ++key) {
    switch (plan.evaluate("a.site", key).kind) {
      case Kind::kFail: ++fail; break;
      case Kind::kStall: ++stall; break;
      case Kind::kCrash: ++crash; break;
      case Kind::kNone: break;
    }
  }
  EXPECT_NEAR(fail / double(n), 0.10, 0.01);
  EXPECT_NEAR(stall / double(n), 0.05, 0.01);
  EXPECT_NEAR(crash / double(n), 0.02, 0.005);
}

TEST_F(FaultTest, UnmentionedSitesNeverFire) {
  auto plan = FaultPlan::parse("a.site:fail=1").take();
  for (std::uint64_t key = 0; key < 256; ++key) {
    EXPECT_FALSE(plan.evaluate("other.site", key).fires());
  }
}

TEST_F(FaultTest, InstallUninstallRoundtrip) {
  EXPECT_FALSE(active());
  EXPECT_FALSE(inject("a.site", 1).fires());  // dormant: always kNone
  install(FaultPlan::parse("a.site:fail=1").take());
  EXPECT_TRUE(active());
  EXPECT_EQ(inject("a.site", 1).kind, Kind::kFail);
  EXPECT_FALSE(inject("other.site", 1).fires());
  uninstall();
  EXPECT_FALSE(active());
  EXPECT_FALSE(inject("a.site", 1).fires());
}

TEST_F(FaultTest, InstallFromEnvReadsEdbFaultPlan) {
  ::unsetenv("EDB_FAULT_PLAN");
  EXPECT_FALSE(install_from_env());
  EXPECT_FALSE(active());
  ::setenv("EDB_FAULT_PLAN", "seed=5;a.site:fail=1", 1);
  EXPECT_TRUE(install_from_env());
  EXPECT_TRUE(active());
  EXPECT_EQ(inject("a.site", 123).kind, Kind::kFail);
  ::unsetenv("EDB_FAULT_PLAN");
  uninstall();
}

TEST_F(FaultTest, ApplyStallIgnoresNonStallActions) {
  // Must return immediately — a hang here would time the test out.
  apply_stall(Action{Kind::kFail, 1e9});
  apply_stall(Action{Kind::kNone, 1e9});
  apply_stall(Action{Kind::kStall, 0.1});  // and a real (tiny) stall runs
}

TEST_F(FaultTest, KindNamesAreStable) {
  EXPECT_STREQ(kind_name(Kind::kNone), "none");
  EXPECT_STREQ(kind_name(Kind::kFail), "fail");
  EXPECT_STREQ(kind_name(Kind::kStall), "stall");
  EXPECT_STREQ(kind_name(Kind::kCrash), "crash");
}

}  // namespace
}  // namespace edb::fault
