// Behavioural LMAC: TDMA slot ownership, CM-gated data, collision freedom.
#include "sim/lmac_sim.h"

#include <gtest/gtest.h>

#include "sim/builder.h"
#include "sim/simulation.h"

namespace edb::sim {
namespace {

MacFactory lmac_factory(double t_slot, int n_slots) {
  return [=](MacEnv env) {
    return std::make_unique<LmacSim>(
        std::move(env), LmacSimParams{.t_slot = t_slot, .n_slots = n_slots});
  };
}

SimulationConfig fast_config(double duration, std::uint64_t seed = 1) {
  SimulationConfig cfg;
  cfg.traffic.fs = 0.02;
  cfg.duration = duration;
  cfg.seed = seed;
  return cfg;
}

TEST(LmacSim, DeliversOverOneHop) {
  Simulation sim(fast_config(500));
  build_chain(sim, 1);
  sim.assign_lmac_slots(8);
  sim.finalize(lmac_factory(0.05, 8));
  sim.run();
  EXPECT_GT(sim.metrics().generated(), 5u);
  EXPECT_GE(sim.metrics().delivery_ratio(), 0.99);
}

TEST(LmacSim, DeliversOverFiveHops) {
  Simulation sim(fast_config(2000, 7));
  build_chain(sim, 5);
  sim.assign_lmac_slots(8);
  sim.finalize(lmac_factory(0.05, 8));
  sim.run();
  EXPECT_GT(sim.metrics().generated(), 100u);
  EXPECT_GE(sim.metrics().delivery_ratio(), 0.98);
}

TEST(LmacSim, SlotAssignmentIsTwoHopCollisionFree) {
  Simulation sim(fast_config(10));
  build_chain(sim, 5);
  sim.assign_lmac_slots(8);
  // Chain: 1-hop and 2-hop neighbours must own distinct slots.
  for (int id = 0; id <= 5; ++id) {
    for (int other = id + 1; other <= std::min(5, id + 2); ++other) {
      EXPECT_NE(sim.node(id).info().lmac_slot,
                sim.node(other).info().lmac_slot)
          << id << " vs " << other;
    }
  }
  sim.finalize(lmac_factory(0.05, 8));
}

TEST(LmacSim, NoCollisionsEver) {
  Simulation sim(fast_config(2000, 11));
  build_chain(sim, 4);
  sim.assign_lmac_slots(8);
  sim.finalize(lmac_factory(0.05, 8));
  sim.run();
  EXPECT_EQ(sim.channel().collisions(), 0u);
}

TEST(LmacSim, MeanDelayNearHalfFramePerHop) {
  const double t_slot = 0.05;
  const int n = 8;
  Simulation sim(fast_config(3000, 3));
  build_chain(sim, 3);
  sim.assign_lmac_slots(n);
  sim.finalize(lmac_factory(t_slot, n));
  sim.run();
  const double measured = sim.metrics().mean_delay_from_depth(3);
  // Analytic: D * (n/2 + 1) * t_slot.  On a fixed slot layout the actual
  // inter-slot gaps are deterministic, so allow a factor-2 band.
  const double predicted = 3 * (n / 2.0 + 1.0) * t_slot;
  EXPECT_GT(measured, predicted * 0.3);
  EXPECT_LT(measured, predicted * 2.0);
}

TEST(LmacSim, IdleDutyCycleTracksControlSections) {
  // Idle network: per frame a node listens n-1 CMs (plus startups) and
  // transmits its own CM.
  SimulationConfig cfg = fast_config(1000);
  cfg.traffic.fs = 1e-9;
  Simulation sim(cfg);
  build_chain(sim, 1);
  sim.assign_lmac_slots(8);
  sim.finalize(lmac_factory(0.05, 8));
  sim.run();
  const auto& radio = sim.node(1).radio();
  const double frame = 8 * 0.05;
  const double t_cm = cfg.packet.ctrl_airtime(cfg.radio);
  const double frames = cfg.duration / frame;
  // Listen: 7 slots * (startup + CM + small timeout margin) per frame,
  // plus its own slot's startup warm-up.
  const double listen_lo = frames * 7 * (cfg.radio.t_startup + t_cm);
  const double listen_hi = listen_lo * 1.6;
  EXPECT_GT(radio.seconds_in(RadioState::kListen), listen_lo * 0.9);
  EXPECT_LT(radio.seconds_in(RadioState::kListen), listen_hi);
  // TX: one CM per frame.
  EXPECT_NEAR(radio.seconds_in(RadioState::kTx), frames * t_cm,
              frames * t_cm * 0.1);
}

TEST(LmacSim, WiderSlotsCutIdleEnergy) {
  auto idle_power = [](double t_slot) {
    SimulationConfig cfg = fast_config(1000);
    cfg.traffic.fs = 1e-9;
    Simulation sim(cfg);
    build_chain(sim, 1);
    sim.assign_lmac_slots(8);
    sim.finalize(lmac_factory(t_slot, 8));
    sim.run();
    return sim.node_energy(1) / cfg.duration;
  };
  EXPECT_LT(idle_power(0.2), 0.5 * idle_power(0.05));
}

TEST(LmacSim, UnownedSlotsAreHarmless) {
  // n_slots far above the node count: listeners time out on empty slots
  // and the protocol still works.
  Simulation sim(fast_config(1500, 5));
  build_chain(sim, 2);
  sim.assign_lmac_slots(32);
  sim.finalize(lmac_factory(0.02, 32));
  sim.run();
  EXPECT_GE(sim.metrics().delivery_ratio(), 0.98);
}

}  // namespace
}  // namespace edb::sim
