#include "opt/golden.h"

#include <gtest/gtest.h>

#include <cmath>

namespace edb::opt {
namespace {

TEST(GoldenSection, QuadraticMinimum) {
  auto r = golden_section_min([](double x) { return (x - 3.0) * (x - 3.0); },
                              0.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 3.0, 1e-8);
  EXPECT_NEAR(r.value, 0.0, 1e-15);
}

TEST(GoldenSection, MinimumAtLeftBoundary) {
  auto r = golden_section_min([](double x) { return x; }, 2.0, 5.0);
  EXPECT_NEAR(r.x, 2.0, 1e-7);
}

TEST(GoldenSection, MinimumAtRightBoundary) {
  auto r = golden_section_min([](double x) { return -x; }, 2.0, 5.0);
  EXPECT_NEAR(r.x, 5.0, 1e-7);
}

TEST(GoldenSection, HyperbolaPlusLinear) {
  // f(x) = 1/x + x has its minimum at x = 1 (the X-MAC energy shape).
  auto r = golden_section_min([](double x) { return 1.0 / x + x; }, 0.01,
                              100.0);
  EXPECT_NEAR(r.x, 1.0, 1e-6);
  EXPECT_NEAR(r.value, 2.0, 1e-12);
}

TEST(GoldenSection, NonSmoothVee) {
  auto r = golden_section_min([](double x) { return std::abs(x - 0.7); },
                              0.0, 1.0);
  EXPECT_NEAR(r.x, 0.7, 1e-8);
}

TEST(GoldenSection, RespectsIterationBudget) {
  GoldenOptions opts;
  opts.max_iterations = 5;
  opts.x_tol = 1e-15;
  auto r = golden_section_min([](double x) { return x * x; }, -1.0, 1.0,
                              opts);
  EXPECT_FALSE(r.converged);
  EXPECT_LE(r.evaluations, 7);  // 2 initial + 5 iterations
}

TEST(GoldenSection, EvaluationCountIsLogarithmic) {
  auto r = golden_section_min([](double x) { return x * x; }, -1e6, 1e6);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.evaluations, 120);
}

}  // namespace
}  // namespace edb::opt
