#include "mac/xmac.h"

#include <gtest/gtest.h>

#include "util/math.h"

namespace edb::mac {
namespace {

class XmacTest : public ::testing::Test {
 protected:
  ModelContext ctx_;  // paper calibration defaults
  XmacModel model_{ctx_};
};

TEST_F(XmacTest, OneParameterWakeInterval) {
  ASSERT_EQ(model_.params().dim(), 1u);
  EXPECT_EQ(model_.params().info(0).name, "Tw");
  EXPECT_DOUBLE_EQ(model_.params().info(0).lo, 0.15);
  EXPECT_DOUBLE_EQ(model_.params().info(0).hi, 2.5);
}

TEST_F(XmacTest, EnergyBreakdownMatchesHandComputedTerms) {
  const std::vector<double> x{0.5};
  const auto p = model_.power_at_ring(x, 1);
  const auto& r = ctx_.radio;

  // cs: one poll (startup + CCA) per wake interval.
  EXPECT_NEAR(p.cs, r.p_rx * r.poll_duration() / 0.5, 1e-12);
  // No synchronisation traffic in an asynchronous protocol.
  EXPECT_DOUBLE_EQ(p.stx, 0.0);
  EXPECT_DOUBLE_EQ(p.srx, 0.0);
  EXPECT_DOUBLE_EQ(p.sleep, r.p_sleep);
  // All traffic-driven terms positive at the bottleneck.
  EXPECT_GT(p.tx, 0.0);
  EXPECT_GT(p.rx, 0.0);
  EXPECT_GT(p.ovr, 0.0);
}

TEST_F(XmacTest, EnergyIsUShapedInWakeInterval) {
  // Polling cost falls with Tw, preamble cost rises: the total is U-shaped
  // with an interior minimum (this is what makes the Fig. 1a trade-off
  // points saturate once Lmax stops binding).
  const double e_lo = model_.energy({0.15});
  const double e_mid = model_.energy({1.0});
  const double e_hi = model_.energy({2.5});
  EXPECT_LT(e_mid, e_lo);
  EXPECT_LT(e_mid, e_hi);
}

TEST_F(XmacTest, LatencyStrictlyIncreasingInWakeInterval) {
  double prev = 0;
  for (double tw : {0.15, 0.5, 1.0, 1.5, 2.0, 2.5}) {
    const double l = model_.latency({tw});
    EXPECT_GT(l, prev);
    prev = l;
  }
}

TEST_F(XmacTest, LatencyIsHalfWakePerHopPlusHandshake) {
  const std::vector<double> x{1.0};
  const double per_hop = model_.hop_latency(x, 1);
  const double handshake = model_.strobe_period() +
                           ctx_.packet.ack_airtime(ctx_.radio) +
                           ctx_.packet.data_airtime(ctx_.radio);
  EXPECT_NEAR(per_hop, 0.5 + handshake, 1e-12);
  // e2e = D identical hops, no source wait.
  EXPECT_NEAR(model_.latency(x), ctx_.ring.depth * per_hop, 1e-12);
  EXPECT_DOUBLE_EQ(model_.source_wait(x), 0.0);
}

TEST_F(XmacTest, BottleneckIsRingOne) {
  const std::vector<double> x{0.5};
  EXPECT_EQ(model_.bottleneck_ring(x), 1);
  // Ring 1 forwards the most traffic, so it must draw the most power.
  EXPECT_GT(model_.power_at_ring(x, 1).total(),
            model_.power_at_ring(x, ctx_.ring.depth).total());
}

TEST_F(XmacTest, EnergyIsEpochTimesBottleneckPower) {
  const std::vector<double> x{0.7};
  EXPECT_NEAR(model_.energy(x),
              model_.power_at_ring(x, 1).total() * ctx_.energy_epoch, 1e-12);
}

TEST_F(XmacTest, FeasibleAcrossTheBoxAtPaperLoad) {
  for (double tw : {0.15, 0.5, 1.0, 2.0, 2.5}) {
    EXPECT_GT(model_.feasibility_margin({tw}), 0.0) << "Tw=" << tw;
  }
}

TEST_F(XmacTest, SaturatedNetworkIsInfeasible) {
  ModelContext heavy = ctx_;
  heavy.fs = 0.5;  // two packets per second per source: way past capacity
  XmacModel jam(heavy);
  EXPECT_LT(jam.feasibility_margin({2.5}), 0.0);
}

TEST_F(XmacTest, PaperCalibrationRanges) {
  // The E range behind Fig. 1a/2a: minimum below the 0.01 J budget,
  // left edge of the axis at Lmax = 1 s, and the delay-optimal corner
  // under the 0.04 J saturation threshold region.
  EXPECT_LT(model_.energy({1.0}), 0.01);
  EXPECT_GT(model_.energy({0.15}), 0.03);
  EXPECT_LT(model_.energy({0.15}), 0.04);
  // Unconstrained energy optimum sits between Lmax = 2 s and 3 s, which is
  // exactly why the paper's trade-off points coincide for Lmax >= 3 s.
  double best_tw = 0, best_e = kInf;
  for (double tw = 0.15; tw <= 2.5; tw += 0.001) {
    const double e = model_.energy({tw});
    if (e < best_e) {
      best_e = e;
      best_tw = tw;
    }
  }
  const double l_at_min = model_.latency({best_tw});
  EXPECT_GT(l_at_min, 2.0);
  EXPECT_LT(l_at_min, 3.0);
}

TEST_F(XmacTest, EnergyScalesWithEpoch) {
  ModelContext c2 = ctx_;
  c2.energy_epoch = 200.0;
  XmacModel doubled(c2);
  EXPECT_NEAR(doubled.energy({0.5}), 2.0 * model_.energy({0.5}), 1e-12);
}

TEST_F(XmacTest, MoreTrafficMoreEnergySameLatency) {
  ModelContext busy = ctx_;
  busy.fs = ctx_.fs * 3;
  XmacModel b(busy);
  EXPECT_GT(b.energy({0.5}), model_.energy({0.5}));
  EXPECT_DOUBLE_EQ(b.latency({0.5}), model_.latency({0.5}));
}

}  // namespace
}  // namespace edb::mac
