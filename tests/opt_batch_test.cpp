// Block-oracle contract tests: the batched grid flavours must be
// bit-identical to the scalar reference path — same argmin bits, same
// value bits, same evaluation count — and the zoom refinement must not
// re-call the oracle on the inherited incumbent.
#include "opt/batch.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "opt/bounds.h"
#include "opt/grid.h"
#include "opt/pareto.h"

namespace edb::opt {
namespace {

// Bitwise double equality with a hex-float failure message.
::testing::AssertionResult bits_eq(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  char buf[128];
  std::snprintf(buf, sizeof buf, "%a != %a", a, b);
  return ::testing::AssertionFailure() << buf;
}

void expect_identical(const VectorResult& scalar, const VectorResult& batch) {
  ASSERT_EQ(scalar.x.size(), batch.x.size());
  for (std::size_t i = 0; i < scalar.x.size(); ++i) {
    EXPECT_TRUE(bits_eq(scalar.x[i], batch.x[i])) << "x[" << i << "]";
  }
  EXPECT_TRUE(bits_eq(scalar.value, batch.value)) << "value";
  EXPECT_EQ(scalar.evaluations, batch.evaluations);
  EXPECT_EQ(scalar.converged, batch.converged);
}

double quadratic1(const std::vector<double>& x) {
  return (x[0] - 3.14159) * (x[0] - 3.14159);
}

double fenced1(const std::vector<double>& x) {
  // Infeasible fence left of 0.5, like the game framework's grid oracle.
  if (x[0] < 0.5) return std::numeric_limits<double>::infinity();
  return std::cos(7.0 * x[0]) + x[0];
}

double bowl2(const std::vector<double>& x) {
  return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] + 2.0) * (x[1] + 2.0) +
         0.3 * std::sin(5.0 * x[0]) * std::cos(3.0 * x[1]);
}

TEST(BatchFromScalar, MatchesScalarOverBlock) {
  auto f = [](const std::vector<double>& x) { return x[0] * x[0] - x[0]; };
  BatchObjective bf = batch_from_scalar(f);
  const double xs[] = {-1.0, 0.0, 0.25, 1e9, -3.5};
  double values[5];
  bf(PointBlock{xs, 5, 1}, values);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(bits_eq(values[i], f({xs[i]})));
  }
}

TEST(GridMinBatch, IdenticalToScalar1D) {
  Box box({0.0}, {10.0});
  auto scalar = grid_min(quadratic1, box, 101);
  auto batch = grid_min(batch_from_scalar(quadratic1), box, 101);
  expect_identical(scalar, batch);
  EXPECT_EQ(scalar.evaluations, 101);
  EXPECT_EQ(scalar.blocks, 0);  // scalar path never calls a block oracle
  EXPECT_GE(batch.blocks, 1);
}

TEST(GridMinBatch, IdenticalToScalar2DAcrossBlockBoundaries) {
  // 75^2 = 5625 lattice points: the batch path needs multiple blocks, so
  // chunk boundaries and the cross-block min-scan are exercised.
  Box box({-2.0, -2.5}, {2.5, 2.0});
  auto scalar = grid_min(bowl2, box, 75);
  auto batch = grid_min(batch_from_scalar(bowl2), box, 75);
  expect_identical(scalar, batch);
  EXPECT_GT(batch.blocks, 1);
}

TEST(GridMinBatch, TieBreaksLikeScalar) {
  // Plateau objective: many equal minima; both paths must keep the
  // earliest lattice point.
  auto flat = [](const std::vector<double>& x) {
    return x[0] < 4.0 ? 1.0 : 2.0;
  };
  Box box({0.0}, {10.0});
  auto scalar = grid_min(flat, box, 33);
  auto batch = grid_min(batch_from_scalar(flat), box, 33);
  expect_identical(scalar, batch);
  EXPECT_TRUE(bits_eq(scalar.x[0], 0.0));
}

TEST(GridRefineBatch, IdenticalToScalarSmooth1D) {
  Box box({0.0}, {10.0});
  const GridOptions opts{.points_per_dim = 33, .rounds = 10, .zoom = 0.2};
  auto scalar = grid_refine_min(quadratic1, box, opts);
  auto batch = grid_refine_min(batch_from_scalar(quadratic1), box, opts);
  expect_identical(scalar, batch);
  EXPECT_NEAR(scalar.x[0], 3.14159, 1e-6);
}

TEST(GridRefineBatch, IdenticalToScalarWithInfFence) {
  Box box({0.0}, {1.0});
  const GridOptions opts{.points_per_dim = 65, .rounds = 8, .zoom = 0.2};
  auto scalar = grid_refine_min(fenced1, box, opts);
  auto batch = grid_refine_min(batch_from_scalar(fenced1), box, opts);
  expect_identical(scalar, batch);
}

TEST(GridRefineBatch, IdenticalToScalar2D) {
  Box box({-5.0, -5.0}, {5.0, 5.0});
  const GridOptions opts{.points_per_dim = 17, .rounds = 12, .zoom = 0.25};
  auto scalar = grid_refine_min(bowl2, box, opts);
  auto batch = grid_refine_min(batch_from_scalar(bowl2), box, opts);
  expect_identical(scalar, batch);
}

TEST(GridRefine, DoesNotReevaluateInheritedIncumbent) {
  // The refined lattice is snapped to contain the previous round's
  // incumbent exactly, whose value is reused instead of re-calling the
  // oracle: an interior optimum costs P + (R-1)(P-1) evaluations, not RP.
  int calls = 0;
  auto counting = [&calls](const std::vector<double>& x) {
    ++calls;
    return (x[0] - 4.5) * (x[0] - 4.5);
  };
  Box box({0.0}, {10.0});
  const int per_dim = 33, rounds = 6;
  auto r = grid_refine_min(
      counting, box,
      {.points_per_dim = per_dim, .rounds = rounds, .zoom = 0.2});
  const int expected = per_dim + (rounds - 1) * (per_dim - 1);
  EXPECT_EQ(calls, expected);
  EXPECT_EQ(r.evaluations, expected);
  EXPECT_NEAR(r.x[0], 4.5, 1e-6);

  // Same economy on the batched flavour, same count.
  int batch_calls = 0;
  BatchObjective bf = [&batch_calls](const PointBlock& b, double* values) {
    batch_calls += static_cast<int>(b.n);
    for (std::size_t i = 0; i < b.n; ++i) {
      const double d = b.point(i)[0] - 4.5;
      values[i] = d * d;
    }
  };
  auto rb = grid_refine_min(
      bf, box, {.points_per_dim = per_dim, .rounds = rounds, .zoom = 0.2});
  EXPECT_EQ(batch_calls, expected);
  EXPECT_EQ(rb.evaluations, expected);
  expect_identical(r, rb);
}

TEST(GridRefineBatch, ReportsBlocksAndOracleTime) {
  Box box({0.0}, {10.0});
  auto r = grid_refine_min(batch_from_scalar(quadratic1), box,
                           {.points_per_dim = 33, .rounds = 4, .zoom = 0.2});
  EXPECT_GE(r.blocks, 4);  // at least one block per round
  EXPECT_GT(r.oracle_ns, 0.0);
}

TEST(TraceFrontierBatch, IdenticalToScalar) {
  auto f1 = [](const std::vector<double>& x) { return x[0] * x[0]; };
  auto f2 = [](const std::vector<double>& x) { return (x[0] - 3.0) * (x[0] - 3.0); };
  auto feas = [](const std::vector<double>& x) { return 2.5 - x[0]; };
  Box box({0.0}, {4.0});
  const ParetoOptions opts{.points_per_dim = 700};  // > one block
  auto scalar = trace_frontier(f1, f2, box, feas, opts);
  auto batch =
      trace_frontier(batch_from_scalar(f1), batch_from_scalar(f2), box,
                     batch_from_scalar(feas), opts);
  ASSERT_EQ(scalar.size(), batch.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_TRUE(bits_eq(scalar[i].f1, batch[i].f1));
    EXPECT_TRUE(bits_eq(scalar[i].f2, batch[i].f2));
    ASSERT_EQ(scalar[i].x.size(), batch[i].x.size());
    EXPECT_TRUE(bits_eq(scalar[i].x[0], batch[i].x[0]));
  }
}

}  // namespace
}  // namespace edb::opt
