#include "game/bargaining.h"

#include <gtest/gtest.h>

namespace edb::game {
namespace {

std::vector<UtilityPoint> staircase() {
  // A Pareto staircase plus interior (dominated) chaff.
  return {{1, 9}, {3, 7}, {5, 5}, {7, 3}, {9, 1},
          {2, 2}, {4, 4}, {0, 0}, {6, 2}};
}

TEST(ParetoMaxFilter, KeepsOnlyTheStaircase) {
  auto front = pareto_max_filter(staircase());
  ASSERT_EQ(front.size(), 5u);
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].u1, front[i - 1].u1);
    EXPECT_LT(front[i].u2, front[i - 1].u2);
  }
}

TEST(ParetoMaxFilter, SinglePoint) {
  auto front = pareto_max_filter({{2, 3}});
  ASSERT_EQ(front.size(), 1u);
  EXPECT_DOUBLE_EQ(front[0].u1, 2);
}

TEST(BargainingProblem, FrontierComputedOnConstruction) {
  BargainingProblem p(staircase(), {0, 0});
  EXPECT_EQ(p.frontier().size(), 5u);
  EXPECT_EQ(p.feasible().size(), 9u);
}

TEST(BargainingProblem, RationalFrontierFiltersBelowThreat) {
  BargainingProblem p(staircase(), {4, 4});
  auto rational = p.rational_frontier();
  // Only (5,5) and (7,3)? (7,3): u2=3 < 4 -> out. Only (5,5).
  ASSERT_EQ(rational.size(), 1u);
  EXPECT_DOUBLE_EQ(rational[0].u1, 5);
}

TEST(BargainingProblem, IdealPointIsComponentwiseMax) {
  BargainingProblem p(staircase(), {2, 2});
  auto ideal = p.ideal_point();
  ASSERT_TRUE(ideal.ok());
  // Rational frontier: (3,7), (5,5), (7,3).
  EXPECT_DOUBLE_EQ(ideal->u1, 7);
  EXPECT_DOUBLE_EQ(ideal->u2, 7);
}

TEST(BargainingProblem, IdealPointErrorsWhenNothingRational) {
  BargainingProblem p(staircase(), {100, 100});
  EXPECT_FALSE(p.ideal_point().ok());
  EXPECT_FALSE(p.has_gains());
}

TEST(BargainingProblem, HasGainsDetectsStrictImprovement) {
  BargainingProblem p(staircase(), {4.9, 4.9});
  EXPECT_TRUE(p.has_gains());  // (5,5) strictly dominates the threat
  BargainingProblem q(staircase(), {5, 5});
  EXPECT_FALSE(q.has_gains());  // equality is not a strict gain
}

TEST(BargainingProblem, SwappedMirrorsEverything) {
  BargainingProblem p({{1, 8}, {4, 2}}, {0, 1});
  auto s = p.swapped();
  EXPECT_DOUBLE_EQ(s.disagreement().u1, 1);
  EXPECT_DOUBLE_EQ(s.disagreement().u2, 0);
  bool found = false;
  for (const auto& q : s.feasible()) {
    if (q.u1 == 8 && q.u2 == 1) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(BargainingProblem, RescaledAppliesAffineMaps) {
  BargainingProblem p({{1, 2}, {3, 1}}, {0, 0});
  auto r = p.rescaled(2, 1, 3, -1);
  EXPECT_DOUBLE_EQ(r.disagreement().u1, 1);
  EXPECT_DOUBLE_EQ(r.disagreement().u2, -1);
  bool found = false;
  for (const auto& q : r.feasible()) {
    if (q.u1 == 3 && q.u2 == 5) found = true;  // (1,2) -> (2*1+1, 3*2-1)
  }
  EXPECT_TRUE(found);
}

TEST(BargainingProblem, DominatesUtilHelper) {
  EXPECT_TRUE(dominates_util({2, 2}, {1, 2}));
  EXPECT_TRUE(dominates_util({2, 3}, {1, 2}));
  EXPECT_FALSE(dominates_util({2, 2}, {2, 2}));
  EXPECT_FALSE(dominates_util({2, 1}, {1, 2}));
}

}  // namespace
}  // namespace edb::game
