// BDCA-style boosted descent (opt/descent.h): convergence on smooth and
// fenced objectives, bit-stable determinism under shuffled multistart
// seeds, and — the gate the solver rewire rides on — agreement-point
// parity between the kDescent production pipeline and the retained
// kGridVerify dense-grid pipeline on the three paper models, at a
// fraction of the evaluation budget.
#include "opt/descent.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/game_framework.h"
#include "core/scenario.h"
#include "mac/registry.h"
#include "opt/batch.h"
#include "util/math.h"

namespace edb {
namespace {

using opt::bdca_descend;
using opt::bdca_multistart_min;
using opt::Box;
using opt::DescentOptions;

::testing::AssertionResult bits_eq(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  char buf[128];
  std::snprintf(buf, sizeof buf, "%a != %a", a, b);
  return ::testing::AssertionFailure() << buf;
}

opt::BatchObjective batched(opt::Objective f) {
  return opt::batch_from_scalar(std::move(f));
}

TEST(BdcaDescent, ConvergesOnQuadratic1D) {
  const Box box({0.0}, {2.0});
  auto f = batched(
      [](const std::vector<double>& x) { return (x[0] - 0.7) * (x[0] - 0.7); });
  auto r = bdca_descend(f, box, {0.1});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 0.7, 1e-4);
  EXPECT_LT(r.value, 1e-8);
  EXPECT_GT(r.evaluations, 0);
  EXPECT_GT(r.blocks, 0);
}

TEST(BdcaDescent, ConvergesOnAnisotropicQuadratic2D) {
  const Box box({-1.0, -1.0}, {3.0, 3.0});
  auto f = batched([](const std::vector<double>& x) {
    const double dx = x[0] - 1.25;
    const double dy = x[1] - 0.4;
    return dx * dx + 20.0 * dy * dy;
  });
  auto r = bdca_descend(f, box, {2.5, 2.5});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.25, 1e-3);
  EXPECT_NEAR(r.x[1], 0.4, 1e-3);
  EXPECT_LT(r.value, 1e-5);
}

TEST(BdcaDescent, StopsAtBoundaryOptimum) {
  // Minimum at the box's lower edge: the projected probes must pin there
  // instead of oscillating or escaping.
  const Box box({0.25}, {2.0});
  auto f = batched([](const std::vector<double>& x) { return x[0] * x[0]; });
  auto r = bdca_descend(f, box, {1.7});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 0.25, 1e-6);
}

TEST(BdcaDescent, BacktracksToAFencedBoundary) {
  // +inf fence below 0.3 (the BatchFence shape): the line search must
  // shrink past the fence and settle near the constrained optimum.
  const Box box({0.0}, {1.0});
  auto f = batched([](const std::vector<double>& x) {
    if (x[0] < 0.3) return kInf;
    return x[0] * x[0];
  });
  auto r = bdca_descend(f, box, {0.9});
  ASSERT_TRUE(r.converged);
  EXPECT_GE(r.x[0], 0.3);
  EXPECT_LT(r.x[0], 0.33);
}

TEST(BdcaDescent, InfeasibleStartReportsNotConverged) {
  const Box box({0.0}, {1.0});
  auto f = batched([](const std::vector<double>& x) {
    if (x[0] < 2.0) return kInf;  // everything fenced
    return x[0];
  });
  auto r = bdca_descend(f, box, {0.5});
  EXPECT_FALSE(r.converged);
}

TEST(BdcaMultistart, FindsTheGlobalWellOfADoubleWell) {
  // (x^2-1)^2 + 0.1 x: local minimum near +1, global near -1.012.
  const Box box({-2.0}, {2.0});
  auto dwell = [](const std::vector<double>& x) {
    const double q = x[0] * x[0] - 1.0;
    return q * q + 0.1 * x[0];
  };
  auto f = batched(dwell);

  // A single descent from the wrong basin stays in the local well...
  auto local = bdca_descend(f, box, {1.3});
  EXPECT_NEAR(local.x[0], 0.987, 0.01);

  // ...the multistart's seeding lattice finds the global one.
  auto global = bdca_multistart_min(f, box);
  ASSERT_TRUE(global.converged);
  EXPECT_NEAR(global.x[0], -1.012, 0.01);
  EXPECT_LT(global.value, local.value);
}

TEST(BdcaMultistart, BitStableUnderShuffledExtraSeeds) {
  const Box box({-2.0}, {2.0});
  auto dwell = [](const std::vector<double>& x) {
    const double q = x[0] * x[0] - 1.0;
    return q * q + 0.1 * x[0];
  };
  const std::vector<std::vector<double>> seeds = {
      {0.9}, {-0.9}, {0.31}, {1.77}, {-0.31}, {0.9}};  // incl. a duplicate

  DescentOptions a;
  a.extra_seeds = seeds;
  auto ra = bdca_multistart_min(batched(dwell), box, a);

  DescentOptions b;
  b.extra_seeds = seeds;
  std::reverse(b.extra_seeds.begin(), b.extra_seeds.end());
  auto rb = bdca_multistart_min(batched(dwell), box, b);

  ASSERT_EQ(ra.x.size(), rb.x.size());
  for (std::size_t i = 0; i < ra.x.size(); ++i) {
    EXPECT_TRUE(bits_eq(ra.x[i], rb.x[i])) << "x[" << i << "]";
  }
  EXPECT_TRUE(bits_eq(ra.value, rb.value));
}

TEST(BdcaMultistart, AllFencedPoolReportsNotConverged) {
  const Box box({0.0}, {1.0});
  auto f = batched([](const std::vector<double>&) { return kInf; });
  auto r = bdca_multistart_min(f, box);
  EXPECT_FALSE(r.converged);
}

// ---- agreement-point parity: kDescent vs kGridVerify on the paper models

class DescentParityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DescentParityTest, MatchesGridVerifyAtAgreementPoints) {
  const core::Scenario scenario = core::Scenario::paper_default();
  auto model = mac::make_model(GetParam(), scenario.context).take();

  core::EnergyDelayGame fast(*model, scenario.requirements);
  fast.set_solver_mode(core::SolverMode::kDescent);
  core::EnergyDelayGame slow(*model, scenario.requirements);
  slow.set_solver_mode(core::SolverMode::kGridVerify);

  auto a = fast.solve();
  auto b = slow.solve();
  ASSERT_TRUE(a.ok()) << GetParam();
  ASSERT_TRUE(b.ok()) << GetParam();

  // Same selected operating point: objectives within 1e-6 relative, the
  // parameter within 1e-4 of the box width (the objectives are flat at
  // sqrt(eps) around the optimum, so x is the looser of the two).
  const double width =
      model->params().upper()[0] - model->params().lower()[0];
  auto expect_point_match = [&](const core::OperatingPoint& p,
                                const core::OperatingPoint& q,
                                const char* label) {
    EXPECT_LT(rel_diff(p.energy, q.energy), 1e-6) << GetParam() << label;
    EXPECT_LT(rel_diff(p.latency, q.latency), 1e-6) << GetParam() << label;
    EXPECT_LT(std::abs(p.x[0] - q.x[0]) / width, 1e-4) << GetParam() << label;
  };
  expect_point_match(a->p1, b->p1, " p1");
  expect_point_match(a->p2, b->p2, " p2");
  expect_point_match(a->nbs, b->nbs, " nbs");
  EXPECT_LT(rel_diff(a->nash_product, b->nash_product), 1e-6) << GetParam();

  // The point of the rewire: the descent pipeline must be >= 5x cheaper
  // in oracle evaluations (the bench gates the absolute numbers).
  EXPECT_LT(a->stats.evaluations * 5, b->stats.evaluations) << GetParam();
  EXPECT_LT(a->stats.evaluations, 3000) << GetParam();
}

TEST_P(DescentParityTest, DescentModeIsDeterministic) {
  const core::Scenario scenario = core::Scenario::paper_default();
  auto model = mac::make_model(GetParam(), scenario.context).take();
  core::EnergyDelayGame g1(*model, scenario.requirements);
  core::EnergyDelayGame g2(*model, scenario.requirements);
  auto a = g1.solve().take();
  auto b = g2.solve().take();
  ASSERT_EQ(a.nbs.x.size(), b.nbs.x.size());
  for (std::size_t i = 0; i < a.nbs.x.size(); ++i) {
    EXPECT_TRUE(bits_eq(a.nbs.x[i], b.nbs.x[i])) << GetParam();
  }
  EXPECT_TRUE(bits_eq(a.nash_product, b.nash_product)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PaperProtocols, DescentParityTest,
                         ::testing::Values("X-MAC", "DMAC", "LMAC"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace edb
