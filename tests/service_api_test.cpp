#include "service/service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/sweep.h"
#include "mac/registry.h"
#include "obs/metrics.h"

namespace edb::service {
namespace {

ServiceOptions small_opts() {
  ServiceOptions opts;
  opts.engine = core::EngineOptions{
      .threads = 2, .parallel = true, .warm_start = true, .memoize = true};
  opts.cache_capacity = 64;
  opts.cache_shards = 4;
  return opts;
}

TuningQuery xmac_query(double l_max = 6.0) {
  TuningQuery q;
  q.scenario = core::Scenario::paper_default();
  q.scenario.requirements.l_max = l_max;
  q.protocols = {"X-MAC"};
  return q;
}

TEST(ServiceApiTest, SyncQueryMatchesColdRunSweepBitForBit) {
  TuningService service(small_opts());
  auto r = service.query(xmac_query());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->per_protocol.size(), 1u);
  ASSERT_TRUE(r->per_protocol[0].feasible());

  auto model =
      mac::make_model("X-MAC", core::Scenario::paper_default().context)
          .take();
  auto cold = core::run_sweep(*model,
                              core::Scenario::paper_default().requirements,
                              core::SweepKind::kLmax, {6.0});
  ASSERT_TRUE(cold.cells[0].feasible());
  const auto& served = *r->per_protocol[0].outcome;
  const auto& reference = *cold.cells[0].outcome;
  EXPECT_EQ(served.nbs.energy, reference.nbs.energy);
  EXPECT_EQ(served.nbs.latency, reference.nbs.latency);
  EXPECT_EQ(served.nash_product, reference.nash_product);
  EXPECT_EQ(served.p1.energy, reference.p1.energy);
  EXPECT_EQ(served.p2.latency, reference.p2.latency);
  EXPECT_EQ(served.nbs.x, reference.nbs.x);
}

TEST(ServiceApiTest, RepeatQueryIsServedFromTheCache) {
  TuningService service(small_opts());
  auto first = service.query(xmac_query());
  ASSERT_TRUE(first.ok());
  const auto solved_before = service.stats().planner.solved;
  auto second = service.query(xmac_query());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(service.stats().planner.solved, solved_before);
  EXPECT_EQ(service.stats().cache.hits, 1u);
  EXPECT_EQ(second->per_protocol[0].outcome->nbs.energy,
            first->per_protocol[0].outcome->nbs.energy);
}

TEST(ServiceApiTest, AsyncSubmitPollWait) {
  TuningService service(small_opts());
  Ticket t = service.submit(xmac_query());
  ASSERT_TRUE(t.valid());
  auto r = service.wait(t);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(service.poll(t));  // done stays done
  // wait() is repeatable and returns the same result.
  auto again = service.wait(t);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->per_protocol[0].outcome->nbs.energy,
            r->per_protocol[0].outcome->nbs.energy);
}

TEST(ServiceApiTest, QueryBatchSeesOnePlannedBatch) {
  TuningService service(small_opts());
  std::vector<TuningQuery> qs = {xmac_query(3.0), xmac_query(4.0),
                                 xmac_query(5.0), xmac_query(4.0)};
  auto results = service.query_batch(qs);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) ASSERT_TRUE(r.ok());
  const auto stats = service.stats();
  // Three distinct questions, one warm chain, one in-batch duplicate.
  EXPECT_EQ(stats.planner.solved, 3u);
  EXPECT_EQ(stats.planner.sweep_jobs, 1u);
  EXPECT_EQ(stats.planner.coalesced, 1u);
  EXPECT_EQ(results[1]->per_protocol[0].outcome->nbs.energy,
            results[3]->per_protocol[0].outcome->nbs.energy);
}

TEST(ServiceApiTest, ErrorsComeBackThroughTickets) {
  TuningService service(small_opts());
  TuningQuery bad = xmac_query();
  bad.protocols = {"no-such-mac"};
  auto r = service.query(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
}

TEST(ServiceApiTest, StatsTrackServing) {
  TuningService service(small_opts());
  service.query(xmac_query());
  service.query(xmac_query());
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.latency_samples, 2u);
  EXPECT_GT(stats.p95_ms, 0.0);
  EXPECT_LE(stats.p50_ms, stats.p95_ms);
  EXPECT_LE(stats.p95_ms, stats.p99_ms);
  EXPECT_LE(stats.p99_ms, stats.p999_ms);
}

TEST(ServiceApiTest, CacheStatsEqualRegistryCounterDeltas) {
  // The cache's hit/miss/eviction/negative-hit counters ARE registry
  // metrics (service.cache.*): Stats must report exactly the registry
  // growth observed across this service's lifetime — one set of numbers,
  // not two bookkeeping systems drifting apart.
  auto& reg = obs::Registry::global();
  const auto h0 = reg.counter("service.cache.hits").value();
  const auto m0 = reg.counter("service.cache.misses").value();
  const auto e0 = reg.counter("service.cache.evictions").value();
  const auto n0 = reg.counter("service.cache.negative_hits").value();

  TuningService service(small_opts());
  service.query(xmac_query());
  service.query(xmac_query());  // repeat: one hit
  const auto cache = service.stats().cache;

  EXPECT_EQ(cache.hits, reg.counter("service.cache.hits").value() - h0);
  EXPECT_EQ(cache.misses, reg.counter("service.cache.misses").value() - m0);
  EXPECT_EQ(cache.evictions,
            reg.counter("service.cache.evictions").value() - e0);
  EXPECT_EQ(cache.negative_hits,
            reg.counter("service.cache.negative_hits").value() - n0);
  EXPECT_EQ(cache.hits, 1u);
  EXPECT_EQ(cache.misses, 1u);

  // And the snapshot export carries the same names.
  const std::string json = TuningService::metrics_json();
  EXPECT_NE(json.find("\"service.cache.hits\": "), std::string::npos);
  const std::string text = TuningService::metrics_text();
  EXPECT_NE(text.find("service.cache.misses"), std::string::npos);
}

TEST(ServiceApiTest, DestructorDrainsPendingWork) {
  Ticket first;
  {
    TuningService service(small_opts());
    first = service.submit(xmac_query(3.0));
    service.submit(xmac_query(4.0));
    service.submit(xmac_query(5.0));
    // Destroy with work still queued: the dispatcher drains rather than
    // drops — waiting on the head proves serving happened, and a clean
    // scope exit proves the tail didn't wedge the destructor.
    ASSERT_TRUE(service.wait(first).ok());
  }
  ASSERT_TRUE(first.valid());
}

TEST(LatencyHistogramTest, QuantilesAndCounters) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  for (int i = 0; i < 90; ++i) h.record(1e-3);   // 1 ms
  for (int i = 0; i < 10; ++i) h.record(100e-3);  // 100 ms
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.quantile(0.5), 1e-3, 1e-3);
  EXPECT_NEAR(h.quantile(0.95), 100e-3, 60e-3);
  EXPECT_GE(h.max(), 100e-3 * 0.999);
  EXPECT_LE(h.min(), 1e-3 * 1.001);
  EXPECT_NEAR(h.mean(), (90 * 1e-3 + 10 * 100e-3) / 100.0, 1e-9);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.9), 0.0);
}

TEST(LatencyHistogramTest, MonotoneQuantiles) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(i * 1e-4);  // 0.1 ms .. 100 ms
  double prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  EXPECT_LE(h.quantile(1.0), h.max() + 1e-12);
}

}  // namespace
}  // namespace edb::service
