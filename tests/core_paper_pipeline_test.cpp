// End-to-end reproduction checks for the paper's evaluation (Figs. 1-2).
//
// The brief announcement publishes no numeric tables, so these tests pin
// the *shape* criteria DESIGN.md derives from the figures:
//   (i)   relaxing Lmax moves the agreement toward the energy player and
//         saturates once Lmax stops binding (X-MAC: Lmax >= 3 s);
//   (ii)  raising Ebudget moves the agreement toward the delay player and
//         saturates once the budget stops binding (X-MAC: >= 0.04 J);
//   (iii) per-protocol energy scale: X-MAC < DMAC < LMAC figure axes;
//   (iv)  every agreement satisfies the proportional-fairness identity
//         within solver tolerance;
//   (v)   every agreement is feasible and Pareto-undominated.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/game_framework.h"
#include "mac/registry.h"
#include "util/math.h"

namespace edb::core {
namespace {

struct SweepPoint {
  double e, l;
  BargainingOutcome outcome;
};

std::map<double, SweepPoint> sweep_lmax(const std::string& protocol,
                                        double e_budget = 0.06) {
  Scenario s = Scenario::paper_default();
  auto model = mac::make_model(protocol, s.context).take();
  std::map<double, SweepPoint> out;
  for (double lmax : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) {
    EnergyDelayGame game(*model,
                         AppRequirements{.e_budget = e_budget, .l_max = lmax});
    auto r = game.solve();
    if (r.ok()) out[lmax] = {r->nbs.energy, r->nbs.latency, *r};
  }
  return out;
}

std::map<double, SweepPoint> sweep_budget(const std::string& protocol,
                                          double lmax = 6.0) {
  Scenario s = Scenario::paper_default();
  auto model = mac::make_model(protocol, s.context).take();
  std::map<double, SweepPoint> out;
  for (double eb : {0.01, 0.02, 0.03, 0.04, 0.05, 0.06}) {
    EnergyDelayGame game(*model,
                         AppRequirements{.e_budget = eb, .l_max = lmax});
    auto r = game.solve();
    if (r.ok()) out[eb] = {r->nbs.energy, r->nbs.latency, *r};
  }
  return out;
}

// ---- Fig. 1: Lmax sweep at Ebudget = 0.06 J --------------------------

TEST(Fig1, SweepCellsSolveExceptLmacTightDelays) {
  EXPECT_EQ(sweep_lmax("X-MAC").size(), 6u);
  EXPECT_EQ(sweep_lmax("DMAC").size(), 6u);
  // Documented deviation (EXPERIMENTS.md): under CC2420 physics LMAC
  // cannot reach Lmax <= 3 s within the 0.06 J budget — its frame-rate
  // control overhead at those delays costs 0.07-0.22 J.  The feasible
  // cells are Lmax = 4, 5, 6 s.
  auto lmac = sweep_lmax("LMAC");
  EXPECT_EQ(lmac.size(), 3u);
  EXPECT_EQ(lmac.count(4.0), 1u);
  EXPECT_EQ(lmac.count(5.0), 1u);
  EXPECT_EQ(lmac.count(6.0), 1u);
}

TEST(Fig1, RelaxingLmaxFavoursTheEnergyPlayer) {
  for (const auto* proto : {"X-MAC", "DMAC", "LMAC"}) {
    auto pts = sweep_lmax(proto);
    // Energy non-increasing, latency non-decreasing along the sweep.
    double prev_e = kInf, prev_l = 0;
    for (const auto& [lmax, p] : pts) {
      EXPECT_LE(p.e, prev_e * (1 + 1e-6)) << proto << " Lmax=" << lmax;
      EXPECT_GE(p.l, prev_l * (1 - 1e-6)) << proto << " Lmax=" << lmax;
      prev_e = p.e;
      prev_l = p.l;
    }
  }
}

TEST(Fig1, XmacSaturatesForLmaxAtLeast3s) {
  auto pts = sweep_lmax("X-MAC");
  // The paper's Fig. 1a: points for Lmax = 3,4,5,6 s coincide.
  for (double lmax : {4.0, 5.0, 6.0}) {
    EXPECT_LT(rel_diff(pts[lmax].e, pts[3.0].e), 1e-3) << lmax;
    EXPECT_LT(rel_diff(pts[lmax].l, pts[3.0].l), 1e-3) << lmax;
  }
  // While 1 s and 2 s are distinct.
  EXPECT_GT(rel_diff(pts[1.0].e, pts[3.0].e), 0.05);
  EXPECT_GT(rel_diff(pts[2.0].e, pts[3.0].e), 0.01);
}

TEST(Fig1, DmacLatePointsCrowdTogether) {
  // Fig. 1b: the Lmax = 5 s and 6 s points nearly coincide on the 0.06 J
  // axis while 1 s and 2 s are far apart.
  auto pts = sweep_lmax("DMAC");
  EXPECT_LT(std::abs(pts[6.0].e - pts[5.0].e), 0.004);
  EXPECT_GT(std::abs(pts[2.0].e - pts[1.0].e), 0.01);
}

TEST(Fig1, LmacPointsAllDistinct) {
  // Fig. 1c: LMAC's points are clearly separated (no saturation cluster).
  auto pts = sweep_lmax("LMAC");
  double prev = kInf;
  for (const auto& [lmax, p] : pts) {
    if (prev != kInf) {
      EXPECT_GT(prev - p.e, 0.002) << lmax;
    }
    prev = p.e;
  }
}

TEST(Fig1, LmacFrontierSpansThePaperAxis) {
  // The Fig. 1c curve reaches ~0.22 J at its tight-delay end (paper axis
  // tops at 0.25 J) even though the agreements sit within the budget.
  Scenario s = Scenario::paper_default();
  auto model = mac::make_model("LMAC", s.context).take();
  EnergyDelayGame game(*model, s.requirements);
  auto front = game.frontier(512);
  ASSERT_FALSE(front.empty());
  EXPECT_GT(front.back().f1, 0.2);   // expensive, fast end
  EXPECT_LT(front.back().f1, 1.7);
  EXPECT_LT(front.front().f1, 0.01); // cheap, slow end
}

TEST(Fig1, EnergyAxesMatchThePaperScales) {
  // X-MAC within 0.04 J, DMAC within 0.06 J, LMAC up to ~0.25 J.
  auto x = sweep_lmax("X-MAC");
  auto d = sweep_lmax("DMAC");
  auto l = sweep_lmax("LMAC");
  for (const auto& [k, p] : x) EXPECT_LT(p.e, 0.04);
  for (const auto& [k, p] : d) EXPECT_LT(p.e, 0.06);
  for (const auto& [k, p] : l) EXPECT_LT(p.e, 0.25);
  // Protocol ordering at matching solved cells: X-MAC < DMAC at the
  // tightest bound, DMAC < LMAC at LMAC's tightest solved bound.
  EXPECT_LT(x[1.0].e, d[1.0].e);
  ASSERT_EQ(l.count(4.0), 1u);
  EXPECT_LT(d[4.0].e, l[4.0].e);
}

// ---- Fig. 2: Ebudget sweep at Lmax = 6 s -----------------------------

TEST(Fig2, XmacAndDmacSolveEverywhere) {
  EXPECT_EQ(sweep_budget("X-MAC").size(), 6u);
  EXPECT_EQ(sweep_budget("DMAC").size(), 6u);
}

TEST(Fig2, LmacSmallBudgetsInfeasibleDocumentedDeviation) {
  // Our LMAC calibration keeps the protocol's paper-matching expensive
  // regime; the price is that budgets below ~0.037 J admit no agreement
  // within Lmax = 6 s (EXPERIMENTS.md documents this deviation).
  auto pts = sweep_budget("LMAC");
  EXPECT_EQ(pts.count(0.01), 0u);
  EXPECT_EQ(pts.count(0.02), 0u);
  EXPECT_EQ(pts.count(0.03), 0u);
  EXPECT_EQ(pts.count(0.04), 1u);
  EXPECT_EQ(pts.count(0.05), 1u);
  EXPECT_EQ(pts.count(0.06), 1u);
}

TEST(Fig2, RaisingBudgetFavoursTheDelayPlayer) {
  for (const auto* proto : {"X-MAC", "DMAC", "LMAC"}) {
    auto pts = sweep_budget(proto);
    double prev_l = kInf;
    for (const auto& [eb, p] : pts) {
      EXPECT_LE(p.l, prev_l * (1 + 1e-6)) << proto << " Eb=" << eb;
      prev_l = p.l;
    }
  }
}

TEST(Fig2, XmacSaturatesForBudgetsAtLeast004) {
  // Fig. 2a: points for Ebudget = 0.04, 0.05, 0.06 J coincide; 0.01-0.03
  // are distinct.
  auto pts = sweep_budget("X-MAC");
  for (double eb : {0.05, 0.06}) {
    EXPECT_LT(rel_diff(pts[eb].e, pts[0.04].e), 1e-3) << eb;
    EXPECT_LT(rel_diff(pts[eb].l, pts[0.04].l), 1e-3) << eb;
  }
  EXPECT_GT(rel_diff(pts[0.01].l, pts[0.04].l), 0.05);
  EXPECT_GT(rel_diff(pts[0.02].l, pts[0.04].l), 0.02);
}

TEST(Fig2, DmacBudgetsStayDistinct) {
  // Fig. 2b: DMAC's points spread across the budget range.
  auto pts = sweep_budget("DMAC");
  EXPECT_GT(pts[0.01].l - pts[0.06].l, 0.5);
}

// ---- Cross-cutting invariants ----------------------------------------

TEST(ProportionalFairness, IdentityHoldsAtEverySolvedPoint) {
  // (E*-Ew)/(Eb-Ew) == (L*-Lw)/(Lb-Lw).  On a smooth strictly-convex
  // frontier the NBS satisfies this only approximately (the identity is
  // exact for the convexified game of [Zhao et al.]); we bound the gap.
  int checked = 0;
  for (const auto* proto : {"X-MAC", "DMAC", "LMAC"}) {
    for (auto& [k, p] : sweep_lmax(proto)) {
      const double gap =
          std::abs(p.outcome.energy_gain_ratio() -
                   p.outcome.latency_gain_ratio());
      EXPECT_LT(gap, 0.25) << proto << " Lmax=" << k;
      ++checked;
    }
    for (auto& [k, p] : sweep_budget(proto)) {
      const double gap =
          std::abs(p.outcome.energy_gain_ratio() -
                   p.outcome.latency_gain_ratio());
      EXPECT_LT(gap, 0.25) << proto << " Eb=" << k;
      ++checked;
    }
  }
  EXPECT_GE(checked, 30);  // 36 cells minus LMAC's six infeasible ones
}

TEST(ParetoOptimality, AgreementsAreUndominatedOnTheFrontier) {
  Scenario s = Scenario::paper_default();
  for (const auto* proto : {"X-MAC", "DMAC", "LMAC"}) {
    auto model = mac::make_model(proto, s.context).take();
    EnergyDelayGame game(*model, s.requirements);
    auto out = game.solve().take();
    for (const auto& fp : game.frontier(512)) {
      const bool dominates = fp.f1 < out.nbs.energy * (1 - 1e-6) &&
                             fp.f2 < out.nbs.latency * (1 - 1e-6);
      EXPECT_FALSE(dominates) << proto;
    }
  }
}

}  // namespace
}  // namespace edb::core
