#include "game/weighted_nbs.h"

#include <gtest/gtest.h>

#include <cmath>

#include "game/axioms.h"

namespace edb::game {
namespace {

std::vector<UtilityPoint> linear_frontier(int n = 2001) {
  std::vector<UtilityPoint> pts;
  for (int i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / (n - 1);
    pts.push_back({t, 1.0 - t});
  }
  return pts;
}

TEST(WeightedNbs, HalfWeightRecoversSymmetricNbs) {
  BargainingProblem p(linear_frontier(), {0.1, 0.2});
  auto sym = nash_bargaining_hull(p).take();
  auto weighted = weighted_nash_bargaining(p, 0.5).take();
  EXPECT_NEAR(weighted.solution.u1, sym.solution.u1, 1e-6);
  EXPECT_NEAR(weighted.solution.u2, sym.solution.u2, 1e-6);
}

TEST(WeightedNbs, LinearFrontierClosedForm) {
  // On u1 + u2 = 1 with threat (0,0): maximise u^a (1-u)^(1-a) -> u* = a.
  BargainingProblem p(linear_frontier(), {0, 0});
  for (double alpha : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    auto r = weighted_nash_bargaining(p, alpha).take();
    EXPECT_NEAR(r.solution.u1, alpha, 1e-6) << alpha;
  }
}

TEST(WeightedNbs, MorePowerMoreUtility) {
  BargainingProblem p(linear_frontier(), {0.05, 0.05});
  double prev = -1;
  for (double alpha : {0.2, 0.4, 0.6, 0.8}) {
    auto r = weighted_nash_bargaining(p, alpha).take();
    EXPECT_GT(r.solution.u1, prev) << alpha;
    prev = r.solution.u1;
  }
}

TEST(WeightedNbs, RejectsInvalidAlpha) {
  BargainingProblem p(linear_frontier(), {0, 0});
  EXPECT_FALSE(weighted_nash_bargaining(p, 0.0).ok());
  EXPECT_FALSE(weighted_nash_bargaining(p, 1.0).ok());
  EXPECT_FALSE(weighted_nash_bargaining(p, -0.5).ok());
}

TEST(WeightedNbs, InfeasibleWithoutRationalPoints) {
  BargainingProblem p(linear_frontier(), {2, 2});
  auto r = weighted_nash_bargaining(p, 0.3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInfeasible);
}

TEST(WeightedNbs, SolutionIsParetoOptimal) {
  std::vector<UtilityPoint> pts;
  for (int i = 0; i <= 1000; ++i) {
    const double t = i / 1000.0;
    pts.push_back({t, std::sqrt(1.0 - t * t)});
  }
  BargainingProblem p(std::move(pts), {0.05, 0.1});
  for (double alpha : {0.2, 0.5, 0.8}) {
    auto r = weighted_nash_bargaining(p, alpha).take();
    auto report = check_pareto_optimality(p, r.solution, 1e-4);
    EXPECT_TRUE(report.holds) << alpha << ": " << report.detail;
  }
}

TEST(WeightedNbs, ScaleInvariantLikeTheSymmetricSolution) {
  BargainingProblem p(linear_frontier(), {0.1, 0.05});
  const double alpha = 0.7;
  auto base = weighted_nash_bargaining(p, alpha).take();
  auto scaled =
      weighted_nash_bargaining(p.rescaled(2.0, 1.0, 5.0, -2.0), alpha).take();
  EXPECT_NEAR(scaled.solution.u1, 2.0 * base.solution.u1 + 1.0, 1e-6);
  EXPECT_NEAR(scaled.solution.u2, 5.0 * base.solution.u2 - 2.0, 1e-6);
}

TEST(WeightedNbs, QuarterCircleClosedForm) {
  // On u2 = sqrt(1-u1^2) with threat 0: maximise a*log(u) +
  // (1-a)/2*log(1-u^2); the derivative vanishes at u* = sqrt(a).
  std::vector<UtilityPoint> pts;
  for (int i = 0; i <= 4000; ++i) {
    const double t = i / 4000.0;
    pts.push_back({t, std::sqrt(1.0 - t * t)});
  }
  BargainingProblem p(std::move(pts), {0, 0});
  for (double alpha : {0.3, 0.5, 0.7}) {
    auto r = weighted_nash_bargaining(p, alpha).take();
    const double expected = std::sqrt(alpha);
    EXPECT_NEAR(r.solution.u1, expected, 2e-3) << alpha;
  }
}

}  // namespace
}  // namespace edb::game
