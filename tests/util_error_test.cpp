#include "util/error.h"

#include <gtest/gtest.h>

#include <string>

namespace edb {
namespace {

Expected<int> parse_positive(int v) {
  if (v <= 0) {
    return make_error(ErrorCode::kInvalidArgument, "must be positive");
  }
  return v;
}

TEST(Expected, ValueState) {
  auto r = parse_positive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 5);
  EXPECT_EQ(*r, 5);
}

TEST(Expected, ErrorState) {
  auto r = parse_positive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(r.error().message, "must be positive");
}

TEST(Expected, ValueOrFallsBack) {
  EXPECT_EQ(parse_positive(7).value_or(42), 7);
  EXPECT_EQ(parse_positive(-7).value_or(42), 42);
}

TEST(Expected, TakeMovesTheValue) {
  Expected<std::string> r = std::string("hello");
  std::string s = std::move(r).take();
  EXPECT_EQ(s, "hello");
}

TEST(Expected, ArrowOperatorOnStructs) {
  struct Pair {
    int a, b;
  };
  Expected<Pair> r = Pair{1, 2};
  EXPECT_EQ(r->a, 1);
  EXPECT_EQ(r->b, 2);
}

TEST(Expected, ErrorToStringIncludesCodeName) {
  const Error e = make_error(ErrorCode::kInfeasible, "no point");
  EXPECT_EQ(e.to_string(), "infeasible: no point");
}

TEST(ErrorCodes, AllNamesDistinct) {
  const ErrorCode codes[] = {ErrorCode::kInvalidArgument,
                             ErrorCode::kInfeasible,
                             ErrorCode::kNotConverged,
                             ErrorCode::kOutOfRange,
                             ErrorCode::kNotFound,
                             ErrorCode::kInternal,
                             ErrorCode::kDeadlineExceeded,
                             ErrorCode::kUnavailable,
                             ErrorCode::kResourceExhausted,
                             ErrorCode::kCancelled};
  for (std::size_t i = 0; i < std::size(codes); ++i) {
    for (std::size_t j = i + 1; j < std::size(codes); ++j) {
      EXPECT_STRNE(error_code_name(codes[i]), error_code_name(codes[j]));
    }
  }
}

TEST(ErrorCodes, ResilienceCodeNames) {
  EXPECT_STREQ(error_code_name(ErrorCode::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(error_code_name(ErrorCode::kUnavailable), "unavailable");
  EXPECT_STREQ(error_code_name(ErrorCode::kResourceExhausted),
               "resource_exhausted");
  EXPECT_STREQ(error_code_name(ErrorCode::kCancelled), "cancelled");
}

TEST(ErrorCodes, TransientVsDeterministic) {
  // Transient codes describe the serving attempt (retryable, never
  // negatively cached); deterministic codes are properties of the inputs.
  EXPECT_TRUE(is_transient(ErrorCode::kNotConverged));
  EXPECT_TRUE(is_transient(ErrorCode::kDeadlineExceeded));
  EXPECT_TRUE(is_transient(ErrorCode::kUnavailable));
  EXPECT_TRUE(is_transient(ErrorCode::kResourceExhausted));
  EXPECT_TRUE(is_transient(ErrorCode::kCancelled));

  EXPECT_FALSE(is_transient(ErrorCode::kInvalidArgument));
  EXPECT_FALSE(is_transient(ErrorCode::kInfeasible));
  EXPECT_FALSE(is_transient(ErrorCode::kOutOfRange));
  EXPECT_FALSE(is_transient(ErrorCode::kNotFound));
  EXPECT_FALSE(is_transient(ErrorCode::kInternal));

  // The taxonomy is compile-time decidable (negative caching guards use
  // it in constant expressions).
  static_assert(is_transient(ErrorCode::kUnavailable));
  static_assert(!is_transient(ErrorCode::kInfeasible));
}

TEST(Expected, AccessingWrongStateDies) {
  EXPECT_DEATH(
      { (void)parse_positive(-1).value(); }, "must be positive");
  auto ok = parse_positive(3);
  EXPECT_DEATH({ (void)ok.error(); }, "holds a value");
}

}  // namespace
}  // namespace edb
