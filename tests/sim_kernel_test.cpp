#include <gtest/gtest.h>

#include <vector>

#include "sim/radio_sm.h"
#include "sim/scheduler.h"

namespace edb::sim {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 10.0);
}

TEST(Scheduler, SimultaneousEventsFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(1.0, [&, i] { order.push_back(i); });
  }
  s.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, RunUntilStopsBeforeLaterEvents) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(5.0, [&] { ++fired; });
  s.run_until(2.0);
  EXPECT_EQ(fired, 1);
  s.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, NowAdvancesToEventTimeDuringCallback) {
  Scheduler s;
  double observed = -1;
  s.schedule_at(4.25, [&] { observed = s.now(); });
  s.run_until(10.0);
  EXPECT_DOUBLE_EQ(observed, 4.25);
}

TEST(Scheduler, EventsScheduledFromCallbacksRun) {
  Scheduler s;
  int chain = 0;
  std::function<void()> tick = [&] {
    if (++chain < 5) s.schedule_in(1.0, tick);
  };
  s.schedule_at(0.0, tick);
  s.run_until(100.0);
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(Scheduler, CancelledEventsDoNotFire) {
  Scheduler s;
  int fired = 0;
  EventHandle h = s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(2.0, [&] { ++fired; });
  h.cancel();
  s.run_until(10.0);
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, CancelAfterFireIsNoop) {
  Scheduler s;
  int fired = 0;
  EventHandle h = s.schedule_at(1.0, [&] { ++fired; });
  s.run_until(2.0);
  h.cancel();  // must not crash or corrupt
  s.run_until(10.0);
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, PendingReflectsLifecycle) {
  Scheduler s;
  EventHandle h = s.schedule_at(1.0, [] {});
  EXPECT_TRUE(h.pending());
  s.run_until(2.0);
  EXPECT_FALSE(h.pending());
  EventHandle h2 = s.schedule_at(5.0, [] {});
  h2.cancel();
  EXPECT_FALSE(h2.pending());
}

TEST(Radio, AccumulatesPerStateTime) {
  Radio r(net::RadioParams::cc2420());
  r.set_state(RadioState::kListen, 1.0);   // slept [0, 1)
  r.set_state(RadioState::kTx, 3.0);       // listened [1, 3)
  r.set_state(RadioState::kSleep, 3.5);    // transmitted [3, 3.5)
  r.finalize(10.0);                        // slept [3.5, 10)
  EXPECT_DOUBLE_EQ(r.seconds_in(RadioState::kSleep), 7.5);
  EXPECT_DOUBLE_EQ(r.seconds_in(RadioState::kListen), 2.0);
  EXPECT_DOUBLE_EQ(r.seconds_in(RadioState::kTx), 0.5);
}

TEST(Radio, EnergyMatchesPowerTimesTime) {
  const auto params = net::RadioParams::cc2420();
  Radio r(params);
  r.set_state(RadioState::kListen, 0.0);
  r.set_state(RadioState::kSleep, 2.0);
  r.finalize(4.0);
  EXPECT_NEAR(r.energy(),
              2.0 * params.p_rx + 2.0 * params.p_sleep, 1e-12);
  EXPECT_NEAR(r.energy_in(RadioState::kListen), 2.0 * params.p_rx, 1e-12);
}

TEST(Radio, TimeConservation) {
  // Total metered time equals the finalise horizon regardless of the
  // transition pattern.
  Radio r(net::RadioParams::cc2420());
  double t = 0;
  const RadioState states[] = {RadioState::kListen, RadioState::kTx,
                               RadioState::kSleep};
  for (int i = 0; i < 30; ++i) {
    t += 0.1 * (i % 3 + 1);
    r.set_state(states[i % 3], t);
  }
  r.finalize(t + 1.0);
  const double total = r.seconds_in(RadioState::kSleep) +
                       r.seconds_in(RadioState::kListen) +
                       r.seconds_in(RadioState::kTx);
  EXPECT_NEAR(total, t + 1.0, 1e-9);
}

}  // namespace
}  // namespace edb::sim
