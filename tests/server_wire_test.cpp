// Wire protocol codec tests (server/wire.h): encode/decode round-trip
// properties over randomized messages, incremental frame extraction off
// a ByteRing, a malformed-frame corpus (truncations, oversized counts,
// out-of-range enum bytes, bad magic — every one must come back as a
// clean error, never a crash or over-read; CI runs this binary under
// ASan), and the JSON debug-mode parser.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "server/wire.h"
#include "service/resilience.h"
#include "util/rng.h"

namespace edb::server {
namespace {

// ---------------------------------------------------------- generators --

service::TuningQuery random_query(Rng& rng) {
  service::TuningQuery q;
  q.scenario = core::Scenario::paper_default();
  auto& c = q.scenario.context;
  if (rng.uniform() < 0.3) c.radio.name = "custom radio \"x\"";
  c.radio.p_tx = rng.uniform(1e-3, 0.1);
  c.radio.t_startup = rng.uniform(1e-5, 2e-3);
  c.packet.payload_bytes = rng.uniform(8, 128);
  c.ring.depth = 1 + static_cast<int>(rng.uniform(0, 9));
  c.ring.density = rng.uniform(1, 20);
  c.fs = rng.uniform(1e-6, 1e-2);
  c.jitter_frac = rng.uniform(0, 0.5);
  c.burst_factor = rng.uniform(1, 4);
  c.arrivals = static_cast<net::ArrivalProcess>(
      static_cast<int>(rng.uniform(0, 2.999)));
  c.model_version = rng.uniform() < 0.5 ? mac::ModelVersion::kV1
                                        : mac::ModelVersion::kV2Queueing;
  q.scenario.requirements.e_budget = rng.uniform(0.01, 0.2);
  q.scenario.requirements.l_max = rng.uniform(0.5, 10);
  const char* names[] = {"X-MAC", "LMAC", "DMAC", "b-mac", "wisemac"};
  const int nproto = static_cast<int>(rng.uniform(0, 3.999));
  for (int i = 0; i < nproto; ++i) {
    q.protocols.push_back(names[static_cast<int>(rng.uniform(0, 4.999))]);
  }
  q.options.alpha = rng.uniform(0.05, 0.95);
  q.options.eval_budget =
      rng.uniform() < 0.5 ? 0 : static_cast<long long>(rng.uniform(1, 1e6));
  q.tenant = "never-on-the-wire";  // travels in HELLO, not QUERY
  return q;
}

core::OperatingPoint random_point(Rng& rng) {
  core::OperatingPoint p;
  const int nx = static_cast<int>(rng.uniform(0, 4.999));
  for (int i = 0; i < nx; ++i) p.x.push_back(rng.uniform(-1, 1));
  p.energy = rng.uniform(0, 0.1);
  p.latency = rng.uniform(0, 10);
  return p;
}

service::TuningResult random_result(Rng& rng) {
  service::TuningResult r;
  r.key.hash = static_cast<std::uint64_t>(rng.uniform(0, 1e18));
  r.key.canonical = "alpha=5.000000000e-01|lmax=6.000000000e+00";
  const int n = static_cast<int>(rng.uniform(1, 4.999));
  for (int i = 0; i < n; ++i) {
    service::ProtocolOutcome o;
    o.protocol = "P" + std::to_string(i);
    if (rng.uniform() < 0.7) {
      core::BargainingOutcome b;
      b.p1 = random_point(rng);
      b.p2 = random_point(rng);
      b.nbs = random_point(rng);
      b.nash_product = rng.uniform(0, 1);
      o.outcome = std::move(b);
    } else {
      o.infeasible_code = rng.uniform() < 0.5 ? ErrorCode::kInfeasible
                                              : ErrorCode::kDeadlineExceeded;
      o.infeasible_reason = "Lmax below the feasible latency floor";
    }
    r.per_protocol.push_back(std::move(o));
  }
  r.recommended = -1 + static_cast<int>(rng.uniform(0, n + 0.999));
  r.quality = static_cast<service::ResultQuality>(
      static_cast<int>(rng.uniform(0, 2.999)));
  return r;
}

// Runs one encoded frame through ring + next_frame.
FrameStatus parse(const std::string& bytes, FrameView* fv) {
  ByteRing ring(16);
  EXPECT_TRUE(ring.append(bytes.data(), bytes.size(), 1u << 22));
  return next_frame(ring, kMaxFrame, fv);
}

// ---------------------------------------------------------- round trips --

TEST(WireRoundTrip, QueryEncodeDecodeEncodeIsIdentity) {
  Rng rng(20260808);
  for (int it = 0; it < 100; ++it) {
    const service::TuningQuery q = random_query(rng);
    const std::uint64_t seq = static_cast<std::uint64_t>(it) * 7919;
    const std::string bytes = encode_query(q, seq);

    FrameView fv;
    ASSERT_EQ(parse(bytes, &fv), FrameStatus::kFrame);
    EXPECT_EQ(fv.type, MsgType::kQuery);
    EXPECT_EQ(fv.seq, seq);

    auto decoded = decode_query(fv.body);
    ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
    // The identity that matters downstream: re-encoding the decoded
    // query reproduces the frame byte for byte (doubles travel as raw
    // bit patterns).
    EXPECT_EQ(encode_query(*decoded, seq), bytes);
    // Tenant travels in HELLO only.
    EXPECT_TRUE(decoded->tenant.empty());
  }
}

TEST(WireRoundTrip, ResultEncodeDecodeEncodeIsIdentity) {
  Rng rng(20260809);
  for (int it = 0; it < 100; ++it) {
    const service::TuningResult r = random_result(rng);
    const std::string bytes = encode_result(r, static_cast<std::uint64_t>(it));

    FrameView fv;
    ASSERT_EQ(parse(bytes, &fv), FrameStatus::kFrame);
    EXPECT_EQ(fv.type, MsgType::kResult);

    auto decoded = decode_result(fv.body);
    ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
    EXPECT_EQ(encode_result(*decoded, static_cast<std::uint64_t>(it)), bytes);
    EXPECT_EQ(decoded->recommended, r.recommended);
    EXPECT_EQ(decoded->quality, r.quality);
    EXPECT_EQ(decoded->per_protocol.size(), r.per_protocol.size());
  }
}

TEST(WireRoundTrip, HelloAndError) {
  Hello h;
  h.mode = WireMode::kJson;
  h.tenant = "tenant with spaces \"quoted\"";
  FrameView fv;
  ASSERT_EQ(parse(encode_hello(h), &fv), FrameStatus::kFrame);
  ASSERT_EQ(fv.type, MsgType::kHello);
  auto dh = decode_hello(fv.body);
  ASSERT_TRUE(dh.ok());
  EXPECT_EQ(dh->version, kWireVersion);
  EXPECT_EQ(dh->mode, WireMode::kJson);
  EXPECT_EQ(dh->tenant, h.tenant);

  WireError e{true, ErrorCode::kResourceExhausted, "shed"};
  ASSERT_EQ(parse(encode_error(e, 42), &fv), FrameStatus::kFrame);
  ASSERT_EQ(fv.type, MsgType::kError);
  EXPECT_EQ(fv.seq, 42u);
  auto de = decode_error(fv.body);
  ASSERT_TRUE(de.ok());
  EXPECT_TRUE(de->fatal);
  EXPECT_EQ(de->code, ErrorCode::kResourceExhausted);
  EXPECT_EQ(de->message, "shed");
}

// ------------------------------------------------------ frame extraction --

TEST(WireFraming, ByteAtATimeDelivery) {
  const std::string bytes = encode_hello_ok();
  ByteRing ring(4);
  FrameView fv;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    ASSERT_TRUE(ring.append(bytes.data() + i, 1, 1u << 20));
    ASSERT_EQ(next_frame(ring, kMaxFrame, &fv), FrameStatus::kNeedMore)
        << "after byte " << i;
  }
  ASSERT_TRUE(ring.append(bytes.data() + bytes.size() - 1, 1, 1u << 20));
  ASSERT_EQ(next_frame(ring, kMaxFrame, &fv), FrameStatus::kFrame);
  EXPECT_EQ(fv.type, MsgType::kHelloOk);
  EXPECT_EQ(ring.size(), 0u);  // fully consumed
}

TEST(WireFraming, PipelinedFramesComeBackInOrder) {
  Rng rng(7);
  const std::string a = encode_query(random_query(rng), 1);
  const std::string b = encode_hello_ok();
  const std::string c = encode_error(WireError{}, 3);
  ByteRing ring(16);
  const std::string all = a + b + c;
  ASSERT_TRUE(ring.append(all.data(), all.size(), 1u << 22));
  FrameView fv;
  ASSERT_EQ(next_frame(ring, kMaxFrame, &fv), FrameStatus::kFrame);
  EXPECT_EQ(fv.type, MsgType::kQuery);
  ASSERT_EQ(next_frame(ring, kMaxFrame, &fv), FrameStatus::kFrame);
  EXPECT_EQ(fv.type, MsgType::kHelloOk);
  ASSERT_EQ(next_frame(ring, kMaxFrame, &fv), FrameStatus::kFrame);
  EXPECT_EQ(fv.type, MsgType::kError);
  EXPECT_EQ(next_frame(ring, kMaxFrame, &fv), FrameStatus::kNeedMore);
}

TEST(WireFraming, OversizedAndShortAndUnknownType) {
  FrameView fv;
  {
    // len just over the cap: kTooLarge, ring untouched.
    ByteWriter w;
    w.u32(kMaxFrame + 1);
    ByteRing ring(8);
    const std::string bytes = w.take();
    ASSERT_TRUE(ring.append(bytes.data(), bytes.size(), 1u << 20));
    EXPECT_EQ(next_frame(ring, kMaxFrame, &fv), FrameStatus::kTooLarge);
    EXPECT_EQ(ring.size(), bytes.size());
  }
  {
    // len < 9 cannot hold type+seq.
    ByteWriter w;
    w.u32(5);
    w.u8(0x03);
    w.u32(0);
    ByteRing ring(8);
    const std::string bytes = w.take();
    ASSERT_TRUE(ring.append(bytes.data(), bytes.size(), 1u << 20));
    EXPECT_EQ(next_frame(ring, kMaxFrame, &fv), FrameStatus::kMalformed);
  }
  {
    // Unknown type byte 0x09.
    std::string bytes = frame(MsgType::kQuery, 0, "body");
    bytes[4] = 0x09;
    ByteRing ring(8);
    ASSERT_TRUE(ring.append(bytes.data(), bytes.size(), 1u << 20));
    EXPECT_EQ(next_frame(ring, kMaxFrame, &fv), FrameStatus::kMalformed);
  }
}

// ----------------------------------------------------- malformed corpus --

// Every strict prefix of a valid body must decode to a clean error (the
// ByteReader is bounds-checked and sticky), and so must one trailing
// byte too many (bodies must consume their frame exactly).
template <typename Decoder>
void expect_prefixes_fail(const std::string& body, Decoder decode) {
  for (std::size_t cut = 0; cut < body.size(); ++cut) {
    auto r = decode(std::string_view(body.data(), cut));
    EXPECT_FALSE(r.ok()) << "prefix of " << cut << " bytes decoded";
    if (r.ok()) break;
    EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
  }
  auto r = decode(body + '\0');
  EXPECT_FALSE(r.ok()) << "trailing byte accepted";
}

std::string body_of(const std::string& bytes) {
  return bytes.substr(13);  // len + type + seq
}

TEST(WireMalformed, TruncatedAndPaddedBodies) {
  Rng rng(20260810);
  expect_prefixes_fail(body_of(encode_query(random_query(rng), 0)),
                       [](std::string_view b) { return decode_query(b); });
  expect_prefixes_fail(body_of(encode_result(random_result(rng), 0)),
                       [](std::string_view b) { return decode_result(b); });
  expect_prefixes_fail(body_of(encode_hello(Hello{})),
                       [](std::string_view b) { return decode_hello(b); });
  expect_prefixes_fail(
      body_of(encode_error(WireError{false, ErrorCode::kInternal, "x"}, 0)),
      [](std::string_view b) { return decode_error(b); });
}

TEST(WireMalformed, BadMagicAndBadVersionByte) {
  std::string body = body_of(encode_hello(Hello{}));
  std::string bad = body;
  bad[0] = 'X';
  EXPECT_FALSE(decode_hello(bad).ok());

  // Mode byte out of range (offset: magic 4 + version 2).
  bad = body;
  bad[6] = 7;
  EXPECT_FALSE(decode_hello(bad).ok());
}

TEST(WireMalformed, OutOfRangeEnumBytes) {
  Rng rng(20260811);
  {
    service::TuningQuery q = random_query(rng);
    q.scenario.context.arrivals = static_cast<net::ArrivalProcess>(9);
    EXPECT_FALSE(decode_query(body_of(encode_query(q, 0))).ok());
    q = random_query(rng);
    q.scenario.context.model_version = static_cast<mac::ModelVersion>(200);
    EXPECT_FALSE(decode_query(body_of(encode_query(q, 0))).ok());
  }
  {
    service::TuningResult r = random_result(rng);
    r.quality = static_cast<service::ResultQuality>(17);
    EXPECT_FALSE(decode_result(body_of(encode_result(r, 0))).ok());
    r = random_result(rng);
    r.recommended = static_cast<int>(r.per_protocol.size());  // one past end
    EXPECT_FALSE(decode_result(body_of(encode_result(r, 0))).ok());
    r = random_result(rng);
    r.per_protocol[0].outcome.reset();
    r.per_protocol[0].infeasible_code = static_cast<ErrorCode>(250);
    r.recommended = -1;
    EXPECT_FALSE(decode_result(body_of(encode_result(r, 0))).ok());
  }
}

TEST(WireMalformed, OversizedProtocolCount) {
  service::TuningQuery q;
  q.scenario = core::Scenario::paper_default();
  std::string body = body_of(encode_query(q, 0));
  // The protocol count u16 sits right before alpha:f64 eval_budget:i64
  // (the query had zero protocols), 18 bytes from the end.
  ASSERT_GE(body.size(), 18u);
  const std::size_t at = body.size() - 18;
  ASSERT_EQ(body[at], 0);
  ASSERT_EQ(body[at + 1], 0);
  body[at] = static_cast<char>(0xff);
  body[at + 1] = static_cast<char>(0xff);  // claims 65535 protocols
  auto r = decode_query(body);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
}

// ------------------------------------------------------- JSON debug mode --

TEST(WireJson, ParsesTheDocumentedRequestSchema) {
  auto hello = parse_json_request("{\"hello\":1,\"tenant\":\"ops\"}");
  ASSERT_TRUE(hello.ok()) << hello.error().to_string();
  EXPECT_TRUE(hello->hello);
  EXPECT_EQ(hello->tenant, "ops");

  auto req = parse_json_request(
      "{\"seq\": 9, \"lmax\": 3.25, \"ebudget\": 0.05, \"alpha\": 0.75, "
      "\"depth\": 4, \"density\": 9.5, \"fs\": 1e-4, "
      "\"protocols\": [\"X-MAC\", \"LMAC\"]}");
  ASSERT_TRUE(req.ok()) << req.error().to_string();
  EXPECT_FALSE(req->hello);
  EXPECT_EQ(req->seq, 9u);
  EXPECT_EQ(req->query.scenario.requirements.l_max, 3.25);
  EXPECT_EQ(req->query.scenario.requirements.e_budget, 0.05);
  EXPECT_EQ(req->query.options.alpha, 0.75);
  EXPECT_EQ(req->query.scenario.context.ring.depth, 4);
  EXPECT_EQ(req->query.scenario.context.ring.density, 9.5);
  EXPECT_EQ(req->query.scenario.context.fs, 1e-4);
  ASSERT_EQ(req->query.protocols.size(), 2u);
  EXPECT_EQ(req->query.protocols[0], "X-MAC");

  // Untouched fields keep the paper calibration.
  const core::Scenario def = core::Scenario::paper_default();
  EXPECT_EQ(req->query.scenario.context.energy_epoch,
            def.context.energy_epoch);
}

TEST(WireJson, RejectsTyposAndTrailingBytes) {
  EXPECT_FALSE(parse_json_request("{\"lmaks\":3}").ok());
  EXPECT_FALSE(parse_json_request("{\"lmax\":3} extra").ok());
  EXPECT_FALSE(parse_json_request("not json").ok());
  EXPECT_FALSE(parse_json_request("{\"protocols\": 3}").ok());
  EXPECT_FALSE(parse_json_request("{\"lmax\": }").ok());
}

TEST(WireJson, ResponseLinesCarrySeqAndOutcome) {
  service::TuningResult r;
  r.key.canonical = "k";
  service::ProtocolOutcome o;
  o.protocol = "X-MAC";
  core::BargainingOutcome b;
  b.nbs.x = {0.03125};
  b.nbs.energy = 0.017;
  b.nbs.latency = 1.5;
  b.nash_product = 0.25;
  o.outcome = std::move(b);
  r.per_protocol.push_back(std::move(o));
  r.recommended = 0;

  const std::string line =
      json_response_line(Expected<service::TuningResult>(std::move(r)), 12);
  EXPECT_NE(line.find("\"seq\":12"), std::string::npos);
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(line.find("\"recommended\":\"X-MAC\""), std::string::npos);
  EXPECT_NE(line.find("\"energy\":0.017"), std::string::npos);
  EXPECT_EQ(line.back(), '\n');

  const std::string err = json_error_line(
      WireError{false, ErrorCode::kResourceExhausted, "shed"}, 13);
  EXPECT_NE(err.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(err.find("resource_exhausted"), std::string::npos);
}

}  // namespace
}  // namespace edb::server
