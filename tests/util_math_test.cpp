#include "util/math.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/si.h"

namespace edb {
namespace {

TEST(ApproxEqual, ExactAndRelative) {
  EXPECT_TRUE(approx_equal(1.0, 1.0));
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1e9, 1e9 * (1 + 1e-10)));
  EXPECT_TRUE(approx_equal(0.0, 0.0));
}

TEST(Clamp, Bounds) {
  EXPECT_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(Lerp, Endpoints) {
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.5), 3.0);
}

TEST(RelDiff, Symmetric) {
  EXPECT_DOUBLE_EQ(rel_diff(1.0, 1.0), 0.0);
  EXPECT_NEAR(rel_diff(1.0, 1.1), 0.1 / 1.1, 1e-12);
  EXPECT_DOUBLE_EQ(rel_diff(0.0, 0.0), 0.0);
}

TEST(Stats, MeanVarianceStddev) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(1.25));
}

TEST(Stats, EmptyIsNaN) {
  EXPECT_TRUE(std::isnan(mean({})));
  EXPECT_TRUE(std::isnan(variance({})));
  EXPECT_TRUE(std::isnan(percentile({}, 50)));
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100), 7.0);
}

TEST(Linspace, EndpointsExactAndEvenlySpaced) {
  auto g = linspace(0.0, 1.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), 0.0);
  EXPECT_DOUBLE_EQ(g.back(), 1.0);
  EXPECT_DOUBLE_EQ(g[2], 0.5);
}

TEST(Logspace, EndpointsExactAndMonotone) {
  auto g = logspace(0.01, 100.0, 9);
  ASSERT_EQ(g.size(), 9u);
  EXPECT_DOUBLE_EQ(g.front(), 0.01);
  EXPECT_DOUBLE_EQ(g.back(), 100.0);
  for (std::size_t i = 1; i < g.size(); ++i) EXPECT_GT(g[i], g[i - 1]);
  EXPECT_NEAR(g[4], 1.0, 1e-12);  // geometric midpoint
}

TEST(SiUnits, Conversions) {
  EXPECT_DOUBLE_EQ(ms(250), 0.25);
  EXPECT_DOUBLE_EQ(us(1500), 0.0015);
  EXPECT_DOUBLE_EQ(mw(56.4), 0.0564);
  EXPECT_DOUBLE_EQ(to_ms(0.25), 250);
  EXPECT_DOUBLE_EQ(to_mw(0.0564), 56.4);
  EXPECT_DOUBLE_EQ(kbps(250), 250e3);
  EXPECT_DOUBLE_EQ(bytes(48), 384);
  EXPECT_DOUBLE_EQ(hours(2), 7200);
}

TEST(SiFormat, PicksSensiblePrefix) {
  EXPECT_EQ(si_format(0.0564, "W", 3), "56.4mW");
  EXPECT_EQ(si_format(250000.0, "bps", 3), "250kbps");
  EXPECT_EQ(si_format(0.0, "J", 3), "0J");
}

}  // namespace
}  // namespace edb
