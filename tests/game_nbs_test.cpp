#include "game/nbs.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/math.h"

namespace edb::game {
namespace {

// Dense sample of the linear frontier u2 = 1 - u1.
std::vector<UtilityPoint> linear_frontier(int n = 201) {
  std::vector<UtilityPoint> pts;
  for (int i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / (n - 1);
    pts.push_back({t, 1.0 - t});
  }
  return pts;
}

TEST(Nbs, LinearFrontierZeroThreatPicksMidpoint) {
  BargainingProblem p(linear_frontier(), {0, 0});
  auto r = nash_bargaining(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->solution.u1, 0.5, 1e-9);
  EXPECT_NEAR(r->solution.u2, 0.5, 1e-9);
  EXPECT_NEAR(r->nash_product, 0.25, 1e-9);
}

TEST(Nbs, AsymmetricThreatShiftsTheAgreement) {
  // Threat (0.4, 0): player 1 already guaranteed 0.4, so the surplus split
  // happens above it: maximise (u1-0.4)(1-u1) -> u1* = 0.7.
  BargainingProblem p(linear_frontier(2001), {0.4, 0.0});
  auto r = nash_bargaining(p);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->solution.u1, 0.7, 1e-3);
}

TEST(Nbs, NoRationalPointIsInfeasible) {
  BargainingProblem p(linear_frontier(), {0.8, 0.8});
  auto r = nash_bargaining(p);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInfeasible);
}

TEST(Nbs, SolutionIsOnTheFrontier) {
  std::vector<UtilityPoint> pts;
  for (int i = 0; i <= 100; ++i) {
    const double t = i / 100.0;
    pts.push_back({t, std::sqrt(1.0 - t * t)});  // quarter circle
    pts.push_back({t * 0.5, 0.3});               // interior chaff
  }
  BargainingProblem p(std::move(pts), {0, 0});
  auto r = nash_bargaining(p);
  ASSERT_TRUE(r.ok());
  // On the circle the Nash product t*sqrt(1-t^2) peaks at t = 1/sqrt(2).
  EXPECT_NEAR(r->solution.u1, 1.0 / std::sqrt(2.0), 0.02);
  EXPECT_NEAR(r->solution.u2, 1.0 / std::sqrt(2.0), 0.02);
}

TEST(NbsHull, MatchesFiniteOnDenseSamples) {
  BargainingProblem p(linear_frontier(1001), {0.1, 0.2});
  auto fin = nash_bargaining(p);
  auto hull = nash_bargaining_hull(p);
  ASSERT_TRUE(fin.ok());
  ASSERT_TRUE(hull.ok());
  EXPECT_NEAR(fin->solution.u1, hull->solution.u1, 1e-3);
  EXPECT_GE(hull->nash_product, fin->nash_product - 1e-12);
}

TEST(NbsHull, InterpolatesSparseVertices) {
  // Only the segment endpoints are sampled; the hull solution lies mid-
  // segment where the product is maximal.
  BargainingProblem p({{0, 1}, {1, 0}}, {0, 0});
  auto hull = nash_bargaining_hull(p);
  ASSERT_TRUE(hull.ok());
  EXPECT_NEAR(hull->solution.u1, 0.5, 1e-9);
  EXPECT_NEAR(hull->solution.u2, 0.5, 1e-9);
  EXPECT_NEAR(hull->t, 0.5, 1e-9);
  // The finite solver can only pick a corner with product 0.
  auto fin = nash_bargaining(p);
  ASSERT_TRUE(fin.ok());
  EXPECT_NEAR(fin->nash_product, 0.0, 1e-12);
  EXPECT_GT(hull->nash_product, fin->nash_product);
}

TEST(NbsHull, ConcaveFrontierStaysOnVertices) {
  // Strictly concave frontier (quarter circle): hull segments lie below the
  // curve, so with dense samples the vertex solution wins.
  std::vector<UtilityPoint> pts;
  for (int i = 0; i <= 2000; ++i) {
    const double t = i / 2000.0;
    pts.push_back({t, std::sqrt(1.0 - t * t)});
  }
  BargainingProblem p(std::move(pts), {0, 0});
  auto hull = nash_bargaining_hull(p);
  ASSERT_TRUE(hull.ok());
  EXPECT_NEAR(hull->solution.u1, 1.0 / std::sqrt(2.0), 1e-3);
}

TEST(Nbs, ParetoOptimalityOfTheSolution) {
  BargainingProblem p(linear_frontier(501), {0.2, 0.1});
  auto r = nash_bargaining(p);
  ASSERT_TRUE(r.ok());
  for (const auto& q : p.feasible()) {
    EXPECT_FALSE(q.u1 > r->solution.u1 + 1e-12 &&
                 q.u2 > r->solution.u2 + 1e-12);
  }
}

TEST(Nbs, DegenerateSingleRationalPoint) {
  BargainingProblem p({{0.5, 0.5}, {0.1, 0.1}}, {0.4, 0.4});
  auto r = nash_bargaining(p);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->solution.u1, 0.5);
}

}  // namespace
}  // namespace edb::game
