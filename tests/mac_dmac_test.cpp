#include "mac/dmac.h"

#include <gtest/gtest.h>

namespace edb::mac {
namespace {

class DmacTest : public ::testing::Test {
 protected:
  ModelContext ctx_;
  DmacModel model_{ctx_};
};

TEST_F(DmacTest, OneParameterCycleLength) {
  ASSERT_EQ(model_.params().dim(), 1u);
  EXPECT_EQ(model_.params().info(0).name, "T");
  EXPECT_DOUBLE_EQ(model_.params().info(0).lo, 0.5);
  EXPECT_DOUBLE_EQ(model_.params().info(0).hi, 12.0);
}

TEST_F(DmacTest, SlotWidthCoversContentionDataAck) {
  const auto& r = ctx_.radio;
  const auto& p = ctx_.packet;
  EXPECT_NEAR(model_.slot_width(),
              7e-3 + p.data_airtime(r) + p.ack_airtime(r) +
                  2 * r.t_turnaround,
              1e-12);
}

TEST_F(DmacTest, DutyCycleCostIsTwoSlotsPerCycle) {
  const std::vector<double> x{2.0};
  const auto pw = model_.power_at_ring(x, 1);
  EXPECT_NEAR(pw.cs, 2.0 * model_.slot_width() * ctx_.radio.p_rx / 2.0,
              1e-12);
  // Staggered schedules overhear inside mandatory slots: no separate cost.
  EXPECT_DOUBLE_EQ(pw.ovr, 0.0);
  // Synchronised protocol: sync terms present.
  EXPECT_GT(pw.stx, 0.0);
  EXPECT_GT(pw.srx, 0.0);
}

TEST_F(DmacTest, EnergyStrictlyDecreasingInCycle) {
  double prev = 1e9;
  for (double t : {0.5, 1.0, 2.0, 4.0, 8.0, 12.0}) {
    const double e = model_.energy({t});
    EXPECT_LT(e, prev);
    prev = e;
  }
}

TEST_F(DmacTest, LatencyIsHalfCyclePlusSlotPipeline) {
  const std::vector<double> x{4.0};
  EXPECT_NEAR(model_.source_wait(x), 2.0, 1e-12);
  EXPECT_NEAR(model_.hop_latency(x, 3), model_.slot_width(), 1e-12);
  EXPECT_NEAR(model_.latency(x),
              2.0 + ctx_.ring.depth * model_.slot_width(), 1e-12);
}

TEST_F(DmacTest, LatencyStrictlyIncreasingInCycle) {
  double prev = 0;
  for (double t : {0.5, 1.0, 2.0, 4.0, 8.0, 12.0}) {
    const double l = model_.latency({t});
    EXPECT_GT(l, prev);
    prev = l;
  }
}

TEST_F(DmacTest, PaperCalibrationRanges) {
  // Fig. 1b: the E axis reaches ~0.06 J at Lmax = 1 s and the cycle upper
  // bound leaves the energy floor just under the 0.01 J budget.
  const double t_for_1s = 2.0 * (1.0 - ctx_.ring.depth * model_.slot_width());
  EXPECT_GT(model_.energy({t_for_1s}), 0.05);
  EXPECT_LT(model_.energy({t_for_1s}), 0.062);
  EXPECT_LT(model_.energy({11.9}), 0.01);
}

TEST_F(DmacTest, CapacityConstraintBindsUnderHeavyTraffic) {
  ModelContext heavy = ctx_;
  heavy.fs = 0.05;  // f_out(1) = 1.25 pkt/s; at T = 12 s that is 15 > k_chain
  DmacModel jam(heavy);
  EXPECT_LT(jam.feasibility_margin({12.0}), 0.0);
  EXPECT_GT(jam.feasibility_margin({0.5}), 0.0);  // short cycles still fine
}

TEST_F(DmacTest, BottleneckIsRingOne) {
  EXPECT_EQ(model_.bottleneck_ring({2.0}), 1);
}

TEST_F(DmacTest, SyncCostsFallWithLongerSyncPeriod) {
  DmacConfig slow_sync;
  slow_sync.sync_period = 1000.0;
  DmacModel lazy(ctx_, slow_sync);
  const auto fast = model_.power_at_ring({2.0}, 1);
  const auto slow = lazy.power_at_ring({2.0}, 1);
  EXPECT_LT(slow.stx, fast.stx);
  EXPECT_LT(slow.srx, fast.srx);
}

}  // namespace
}  // namespace edb::mac
