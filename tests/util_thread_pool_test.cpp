#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace edb {
namespace {

TEST(ThreadPoolTest, ConstructAndShutdownIdle) {
  // Workers must start and join cleanly without ever seeing a batch.
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
  }
}

TEST(ThreadPoolTest, ZeroPicksHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1);
  EXPECT_EQ(pool.size(), ThreadPool::hardware_threads());
}

TEST(ThreadPoolTest, RunAllExecutesEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 100;
  std::vector<std::atomic<int>> counts(kTasks);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < kTasks; ++i) {
    tasks.push_back([&counts, i] { counts[i].fetch_add(1); });
  }
  pool.run_all(tasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, ParallelForWritesOwnSlots) {
  ThreadPool pool(3);
  std::vector<std::size_t> out(257, 0);
  pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(ThreadPoolTest, EmptyBatchIsANoop) {
  ThreadPool pool(2);
  pool.run_all({});
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPoolTest, LowestIndexedExceptionPropagates) {
  ThreadPool pool(4);
  std::vector<std::function<void()>> tasks;
  std::atomic<int> executed{0};
  for (std::size_t i = 0; i < 16; ++i) {
    tasks.push_back([&executed, i] {
      executed.fetch_add(1);
      if (i == 3 || i == 11) {
        throw std::runtime_error("task " + std::to_string(i));
      }
    });
  }
  try {
    pool.run_all(tasks);
    FAIL() << "expected the captured exception to be rethrown";
  } catch (const std::runtime_error& e) {
    // Deterministic: the lowest task index wins regardless of completion
    // order, and the batch still ran to completion first.
    EXPECT_STREQ(e.what(), "task 3");
  }
  EXPECT_EQ(executed.load(), 16);
}

TEST(ThreadPoolTest, UsableAfterAnExceptionalBatch) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> bad;
  bad.push_back([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.run_all(bad), std::runtime_error);

  std::atomic<int> ok{0};
  pool.parallel_for(5, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 5);
}

}  // namespace
}  // namespace edb
