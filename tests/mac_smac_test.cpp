// S-MAC: the 2-D-parameter extension model, including full framework
// integration cross-validated against a 2-D grid oracle.
#include "mac/smac.h"

#include <gtest/gtest.h>

#include "core/game_framework.h"
#include "util/math.h"

namespace edb::mac {
namespace {

class SmacTest : public ::testing::Test {
 protected:
  ModelContext ctx_;
  SmacModel model_{ctx_};
};

TEST_F(SmacTest, TwoParameters) {
  ASSERT_EQ(model_.params().dim(), 2u);
  EXPECT_EQ(model_.params().info(0).name, "T");
  EXPECT_EQ(model_.params().info(1).name, "w");
  EXPECT_DOUBLE_EQ(model_.params().info(1).lo, model_.min_window());
}

TEST_F(SmacTest, MinWindowCoversOneExchange) {
  const auto& r = ctx_.radio;
  const auto& p = ctx_.packet;
  EXPECT_GT(model_.min_window(),
            p.sync_airtime(r) + p.data_airtime(r) + p.ack_airtime(r));
  EXPECT_LT(model_.min_window(), 0.1);
}

TEST_F(SmacTest, DutyCycleCostIsWindowFraction) {
  const std::vector<double> x{2.0, 0.1};
  const auto p = model_.power_at_ring(x, 1);
  EXPECT_NEAR(p.cs, 0.05 * ctx_.radio.p_rx, 1e-12);
  EXPECT_GT(p.stx, 0.0);  // synchronised protocol
  EXPECT_GT(p.srx, 0.0);
  EXPECT_GT(p.ovr, 0.0);  // RTS/CTS headers are overheard
}

TEST_F(SmacTest, EnergyMonotoneInBothParameters) {
  // Larger cycle -> lower energy; wider window -> higher energy.
  EXPECT_GT(model_.energy({1.0, 0.1}), model_.energy({4.0, 0.1}));
  EXPECT_GT(model_.energy({4.0, 0.3}), model_.energy({4.0, 0.1}));
}

TEST_F(SmacTest, LatencyMonotoneOppositeWays) {
  // Larger cycle -> slower; wider window -> faster (adaptive listening
  // carries more hops per cycle).
  EXPECT_LT(model_.latency({1.0, 0.1}), model_.latency({4.0, 0.1}));
  EXPECT_GT(model_.latency({4.0, 0.1}), model_.latency({4.0, 0.3}));
}

TEST_F(SmacTest, AdaptiveListeningAmortisesSleepDelay) {
  // Doubling the window (hops per cycle) roughly halves the sleep-delay
  // part of the hop latency.
  const double w = model_.min_window();
  const double l1 = model_.hop_latency({4.0, w}, 1);
  const double l2 = model_.hop_latency({4.0, 2.0 * w}, 1);
  // Sleep delay dominates at T = 4 s, so the hop latency nearly halves.
  EXPECT_LT(l2, 0.6 * l1);
  EXPECT_GT(l2, 0.45 * l1);
}

TEST_F(SmacTest, DutyCeilingBindsAtWideWindows) {
  // w > T/4 is infeasible.
  EXPECT_LT(model_.feasibility_margin({0.5, 0.2}), 0.0);
  EXPECT_GT(model_.feasibility_margin({2.0, 0.2}), 0.0);
}

TEST_F(SmacTest, CapacityBindsUnderHeavyTraffic) {
  ModelContext heavy = ctx_;
  heavy.fs = 0.05;
  SmacModel jam(heavy);
  EXPECT_LT(jam.feasibility_margin({10.0, 0.1}), 0.0);
  EXPECT_GT(jam.feasibility_margin({1.0, 0.1}), 0.0);
}

TEST_F(SmacTest, FrontierIsTwoDimensionalButMonotone) {
  core::AppRequirements req{.e_budget = 0.06, .l_max = 6.0};
  core::EnergyDelayGame game(model_, req);
  auto frontier = game.frontier(64);  // 64^2 grid
  ASSERT_GE(frontier.size(), 10u);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GT(frontier[i].f1, frontier[i - 1].f1);
    EXPECT_LT(frontier[i].f2, frontier[i - 1].f2);
  }
}

TEST_F(SmacTest, FrameworkSolves2DGameAndMatchesGridOracle) {
  core::AppRequirements req{.e_budget = 0.06, .l_max = 3.0};
  core::EnergyDelayGame game(model_, req);
  auto p1 = game.solve_p1();
  ASSERT_TRUE(p1.ok());

  // Dense 2-D oracle for (P1).
  double best = kInf;
  const auto lo = model_.params().lower();
  const auto hi = model_.params().upper();
  for (int i = 0; i <= 400; ++i) {
    for (int j = 0; j <= 400; ++j) {
      std::vector<double> x{lo[0] + (hi[0] - lo[0]) * i / 400.0,
                            lo[1] + (hi[1] - lo[1]) * j / 400.0};
      if (!model_.feasible(x) || model_.latency(x) > req.l_max) continue;
      best = std::min(best, model_.energy(x));
    }
  }
  ASSERT_TRUE(std::isfinite(best));
  EXPECT_LT(rel_diff(p1->energy, best), 5e-3);
  EXPECT_LE(p1->energy, best * (1 + 1e-9));  // solver at least as good

  auto outcome = game.solve();
  ASSERT_TRUE(outcome.ok());
  EXPECT_LE(outcome->nbs.energy, req.e_budget * (1 + 1e-6));
  EXPECT_LE(outcome->nbs.latency, req.l_max * (1 + 1e-6));
  EXPECT_TRUE(model_.feasible(outcome->nbs.x));
  // The agreement improves both players over the disagreement point.
  EXPECT_LT(outcome->nbs.energy, outcome->e_worst() * (1 + 1e-9));
  EXPECT_LT(outcome->nbs.latency, outcome->l_worst() * (1 + 1e-9));
}

TEST_F(SmacTest, OptimalWindowIsNotAlwaysMinimal) {
  // The 2nd dimension earns its keep: under a tight delay bound the
  // energy player prefers widening the window over shortening the cycle.
  core::AppRequirements tight{.e_budget = 0.06, .l_max = 1.0};
  core::EnergyDelayGame game(model_, tight);
  auto p1 = game.solve_p1();
  ASSERT_TRUE(p1.ok());
  EXPECT_GT(p1->x[1], model_.min_window() * 1.05);
}

}  // namespace
}  // namespace edb::mac
