#include "opt/bisect.h"

#include <gtest/gtest.h>

#include <cmath>

namespace edb::opt {
namespace {

TEST(Bisect, LinearRoot) {
  auto r = bisect_root([](double x) { return x - 2.5; }, 0.0, 10.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 2.5, 1e-10);
}

TEST(Bisect, DecreasingFunction) {
  auto r = bisect_root([](double x) { return 1.0 - x * x; }, 0.0, 10.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 1.0, 1e-10);
}

TEST(Bisect, RootAtBoundaryLo) {
  auto r = bisect_root([](double x) { return x; }, 0.0, 1.0);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 0.0);
}

TEST(Bisect, RootAtBoundaryHi) {
  auto r = bisect_root([](double x) { return x - 1.0; }, 0.0, 1.0);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 1.0);
}

TEST(Bisect, NotBracketedIsAnError) {
  auto r = bisect_root([](double x) { return x + 10.0; }, 0.0, 1.0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
}

TEST(Bisect, TranscendentalRoot) {
  auto r = bisect_root([](double x) { return std::cos(x); }, 0.0, 3.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, M_PI / 2.0, 1e-10);
}

TEST(Bisect, SolvesLatencyBoundForConstraintPlacement) {
  // The framework's canonical use: find Tw with L(Tw) = Lmax for a
  // monotone latency L(Tw) = 5 * (Tw/2 + 0.002).
  const double lmax = 3.0;
  auto r = bisect_root(
      [&](double tw) { return 5.0 * (0.5 * tw + 0.002) - lmax; }, 0.01, 5.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(5.0 * (0.5 * *r + 0.002), 3.0, 1e-9);
}

}  // namespace
}  // namespace edb::opt
