#include "net/radio.h"

#include <gtest/gtest.h>

#include "net/packet.h"

namespace edb::net {
namespace {

TEST(RadioParams, Cc2420PresetSane) {
  const RadioParams r = RadioParams::cc2420();
  EXPECT_TRUE(r.validate().ok());
  EXPECT_DOUBLE_EQ(r.p_rx, 0.0564);
  EXPECT_DOUBLE_EQ(r.p_tx, 0.0522);
  EXPECT_DOUBLE_EQ(r.bitrate, 250e3);
  EXPECT_LT(r.p_sleep, r.p_rx);
}

TEST(RadioParams, Cc1000PresetSane) {
  const RadioParams r = RadioParams::cc1000();
  EXPECT_TRUE(r.validate().ok());
  EXPECT_GT(r.p_tx, r.p_rx);  // CC1000 TX above RX at +5 dBm
  EXPECT_DOUBLE_EQ(r.bitrate, 19.2e3);
}

TEST(RadioParams, AirtimeLinearInBits) {
  const RadioParams r = RadioParams::cc2420();
  EXPECT_DOUBLE_EQ(r.airtime(250e3), 1.0);
  EXPECT_DOUBLE_EQ(r.airtime(384), 384 / 250e3);  // 48-byte frame
  EXPECT_DOUBLE_EQ(r.airtime(2 * 384), 2 * r.airtime(384));
}

TEST(RadioParams, PollDurationIsStartupPlusCca) {
  const RadioParams r = RadioParams::cc2420();
  EXPECT_DOUBLE_EQ(r.poll_duration(), r.t_startup + r.t_cca);
  EXPECT_NEAR(r.poll_duration(), 0.8e-3, 1e-12);
}

TEST(RadioParams, ValidateRejectsBadValues) {
  RadioParams r = RadioParams::cc2420();
  r.bitrate = 0;
  EXPECT_FALSE(r.validate().ok());

  r = RadioParams::cc2420();
  r.p_sleep = r.p_rx;  // sleep must be cheaper than active
  EXPECT_FALSE(r.validate().ok());

  r = RadioParams::cc2420();
  r.p_tx = -1;
  EXPECT_FALSE(r.validate().ok());

  r = RadioParams::cc2420();
  r.t_startup = -1e-3;
  EXPECT_FALSE(r.validate().ok());
}

TEST(PacketFormat, DefaultAirtimes) {
  const RadioParams r = RadioParams::cc2420();
  const PacketFormat p = PacketFormat::default_wsn();
  EXPECT_TRUE(p.validate().ok());
  EXPECT_DOUBLE_EQ(p.data_bits(), (32 + 16) * 8.0);
  EXPECT_NEAR(p.data_airtime(r), 1.536e-3, 1e-9);
  EXPECT_NEAR(p.ack_airtime(r), 0.32e-3, 1e-9);
  EXPECT_NEAR(p.strobe_airtime(r), 0.32e-3, 1e-9);
  EXPECT_NEAR(p.ctrl_airtime(r), 0.384e-3, 1e-9);
}

TEST(PacketFormat, ValidateRejectsBadSizes) {
  PacketFormat p;
  p.header_bytes = 0;
  EXPECT_FALSE(p.validate().ok());
  p = PacketFormat{};
  p.ack_bytes = 0;
  EXPECT_FALSE(p.validate().ok());
  p = PacketFormat{};
  p.payload_bytes = -1;
  EXPECT_FALSE(p.validate().ok());
}

}  // namespace
}  // namespace edb::net
