#include "core/report.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "util/csv.h"
#include "util/math.h"
#include "util/si.h"

namespace edb::core {
namespace {

// A hand-built sweep result: no solver involved, so the test pins the
// rendering, not the pipeline.
SweepResult sample_result() {
  SweepResult r;
  r.protocol = "X-MAC";
  r.kind = SweepKind::kLmax;
  r.base = AppRequirements{.e_budget = 0.06, .l_max = 6.0};

  auto outcome_at = [](double e, double l) {
    BargainingOutcome o;
    o.p1 = OperatingPoint{{0.1}, e * 0.8, l * 1.5};   // (Ebest, Lworst)
    o.p2 = OperatingPoint{{0.4}, e * 1.6, l * 0.5};   // (Eworst, Lbest)
    o.nbs = OperatingPoint{{0.2}, e, l};
    o.nash_product = (o.e_worst() - e) * (o.l_worst() - l);
    return o;
  };

  SweepCell dead;
  dead.value = 1.0;
  dead.infeasible_reason =
      "infeasible: X-MAC (P1): no parameter setting meets Lmax";
  r.cells.push_back(dead);

  SweepCell a;
  a.value = 2.0;
  a.outcome = outcome_at(0.0123456789, 0.987654321);
  r.cells.push_back(a);

  SweepCell b;
  b.value = 6.0;
  b.outcome = outcome_at(0.0234567891, 1.23456789);
  r.cells.push_back(b);
  return r;
}

std::vector<std::vector<std::string>> csv_rows(const SweepResult& r) {
  std::ostringstream out;
  write_sweep_csv(r, out);
  std::vector<std::vector<std::string>> rows;
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    rows.push_back(parse_csv_line(line));
  }
  return rows;
}

TEST(ReportCsvTest, HeaderMatchesSchema) {
  const auto rows = csv_rows(sample_result());
  ASSERT_FALSE(rows.empty());
  const std::vector<std::string> expected = {
      "protocol", "sweep",    "value",    "feasible", "e_star_J",
      "l_star_ms", "e_best_J", "e_worst_J", "l_best_ms", "l_worst_ms",
      "gain_e",   "gain_l"};
  EXPECT_EQ(rows[0], expected);
}

TEST(ReportCsvTest, OneRowPerCellAndFlagFidelity) {
  const auto result = sample_result();
  const auto rows = csv_rows(result);
  ASSERT_EQ(rows.size(), result.cells.size() + 1);  // header + cells
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const auto& row = rows[i + 1];
    ASSERT_EQ(row.size(), rows[0].size()) << "ragged row " << i;
    EXPECT_EQ(row[0], "X-MAC");
    EXPECT_EQ(row[1], "Lmax");
    EXPECT_EQ(row[3], result.cells[i].feasible() ? "1" : "0");
  }
}

TEST(ReportCsvTest, ValuesRoundTripThroughTheReader) {
  const auto result = sample_result();
  const auto rows = csv_rows(result);
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const auto& cell = result.cells[i];
    const auto& row = rows[i + 1];
    EXPECT_EQ(std::strtod(row[2].c_str(), nullptr), cell.value);
    if (!cell.feasible()) {
      // Infeasible rows leave every numeric column empty.
      for (std::size_t c = 4; c < row.size(); ++c) {
        EXPECT_TRUE(row[c].empty()) << "column " << c;
      }
      continue;
    }
    const auto& o = *cell.outcome;
    // %.10g loses nothing a double-parse can't recover at 1e-9 relative.
    EXPECT_LT(rel_diff(std::strtod(row[4].c_str(), nullptr), o.nbs.energy),
              1e-9);
    EXPECT_LT(rel_diff(std::strtod(row[5].c_str(), nullptr),
                       to_ms(o.nbs.latency)),
              1e-9);
    EXPECT_LT(rel_diff(std::strtod(row[6].c_str(), nullptr), o.e_best()),
              1e-9);
    EXPECT_LT(rel_diff(std::strtod(row[7].c_str(), nullptr), o.e_worst()),
              1e-9);
    EXPECT_LT(rel_diff(std::strtod(row[8].c_str(), nullptr),
                       to_ms(o.l_best())),
              1e-9);
    EXPECT_LT(rel_diff(std::strtod(row[9].c_str(), nullptr),
                       to_ms(o.l_worst())),
              1e-9);
    EXPECT_LT(rel_diff(std::strtod(row[10].c_str(), nullptr),
                       o.energy_gain_ratio()),
              1e-9);
    EXPECT_LT(rel_diff(std::strtod(row[11].c_str(), nullptr),
                       o.latency_gain_ratio()),
              1e-9);
  }
}

TEST(ReportTableTest, TableAndSummarySmoke) {
  const auto result = sample_result();
  std::ostringstream table;
  print_sweep_table(result, table);
  EXPECT_NE(table.str().find("E* [J]"), std::string::npos);
  EXPECT_NE(table.str().find("infeasible"), std::string::npos);

  std::ostringstream summary;
  print_sweep_summary(result, summary);
  EXPECT_NE(summary.str().find("X-MAC"), std::string::npos);
  EXPECT_NE(summary.str().find("2/3 cells feasible"), std::string::npos);
}

}  // namespace
}  // namespace edb::core
