// Batch-contract parity for the MAC models: evaluate_batch must return
// bit-identical values to the scalar entry points — for the SoA kernel
// overrides (X-MAC, DMAC, LMAC), for the scalar-loop fallback the other
// protocols inherit, and through the memoizing decorator — over the paper
// calibration and a catalog sample of deployment contexts.  On top of the
// raw metrics, the zooming grid driven by a model-backed block oracle
// must reproduce the scalar-oracle solve exactly (x, value, evaluations).
#include "mac/model.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/game_framework.h"
#include "mac/memo.h"
#include "mac/registry.h"
#include "opt/batch.h"
#include "opt/bounds.h"
#include "opt/grid.h"
#include "util/math.h"
#include "util/rng.h"

namespace edb {
namespace {

::testing::AssertionResult bits_eq(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  char buf[128];
  std::snprintf(buf, sizeof buf, "%a != %a", a, b);
  return ::testing::AssertionFailure() << buf;
}

// Deterministic sample of points inside the model's box: a lattice per
// axis (the solvers' access pattern) plus uniform draws.
std::vector<std::vector<double>> sample_points(const mac::AnalyticMacModel& m,
                                               int lattice_n, int random_n) {
  const auto lo = m.params().lower();
  const auto hi = m.params().upper();
  const std::size_t dim = m.params().dim();
  std::vector<std::vector<double>> points;
  std::vector<std::vector<double>> axes(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    axes[i] = linspace(lo[i], hi[i], lattice_n);
  }
  // Diagonal walk through the axes (full cartesian products get large for
  // the 2-D S-MAC; the diagonal still touches every axis value).
  for (int k = 0; k < lattice_n; ++k) {
    std::vector<double> x(dim);
    for (std::size_t i = 0; i < dim; ++i) x[i] = axes[i][k];
    points.push_back(std::move(x));
  }
  Rng rng(0xba7c4ULL);
  for (int k = 0; k < random_n; ++k) {
    std::vector<double> x(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      x[i] = lo[i] + (hi[i] - lo[i]) * rng.uniform();
    }
    points.push_back(std::move(x));
  }
  return points;
}

void expect_batch_parity(const mac::AnalyticMacModel& model,
                         const std::string& label) {
  const auto points = sample_points(model, 33, 32);
  const std::size_t dim = model.params().dim();
  std::vector<double> xs;
  for (const auto& p : points) xs.insert(xs.end(), p.begin(), p.end());
  const std::size_t n = points.size();

  std::vector<double> e(n), l(n), m(n);
  model.evaluate_batch(xs.data(), n, e.data(), l.data(), m.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(bits_eq(e[i], model.energy(points[i])))
        << label << " energy @ point " << i;
    EXPECT_TRUE(bits_eq(l[i], model.latency(points[i])))
        << label << " latency @ point " << i;
    EXPECT_TRUE(bits_eq(m[i], model.feasibility_margin(points[i])))
        << label << " margin @ point " << i;
  }

  // Selective outputs: a margins-only call must produce the same margins.
  std::vector<double> m_only(n);
  model.evaluate_batch(xs.data(), n, nullptr, nullptr, m_only.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(bits_eq(m_only[i], m[i])) << label << " margins-only " << i;
  }

  // Single-point blocks (the fused scalar-stage path) match too.
  for (std::size_t i = 0; i < std::min<std::size_t>(n, 8); ++i) {
    double e1, l1, m1;
    model.evaluate_batch(xs.data() + i * dim, 1, &e1, &l1, &m1);
    EXPECT_TRUE(bits_eq(e1, e[i])) << label << " n=1 energy " << i;
    EXPECT_TRUE(bits_eq(l1, l[i])) << label << " n=1 latency " << i;
    EXPECT_TRUE(bits_eq(m1, m[i])) << label << " n=1 margin " << i;
  }
}

TEST(MacBatchParity, AllProtocolsPaperCalibration) {
  const mac::ModelContext ctx;  // the paper's calibration
  for (const auto& name : mac::registered_protocols()) {
    auto model = mac::make_model(name, ctx);
    ASSERT_TRUE(model.ok()) << name;
    expect_batch_parity(**model, name);
  }
}

TEST(MacBatchParity, PaperModelsAdvertiseKernels) {
  const mac::ModelContext ctx;
  for (const auto& name : mac::paper_protocols()) {
    auto model = mac::make_model(name, ctx);
    ASSERT_TRUE(model.ok()) << name;
    EXPECT_TRUE((*model)->has_batch_kernel()) << name;
  }
}

TEST(MacBatchParity, KV2QueueingKernelsMatchScalar) {
  // The kV2Queueing lane kernels re-derive the M/G/1 term with the exact
  // association order of mac/model.h queueing_delay; parity must hold
  // across every arrival shape the traffic model supports, and the
  // scalar-tail reference path must agree with the full-lane path.
  struct Shape {
    const char* label;
    net::ArrivalProcess arrivals;
    double burst_factor;
    double jitter_frac;
  };
  const Shape shapes[] = {
      {"periodic", net::ArrivalProcess::kPeriodic, 1.0, 0.25},
      {"poisson", net::ArrivalProcess::kPoisson, 1.0, 0.1},
      {"bursty", net::ArrivalProcess::kBursty, 6.0, 0.1},
  };
  for (const Shape& s : shapes) {
    mac::ModelContext ctx;
    ctx.model_version = mac::ModelVersion::kV2Queueing;
    ctx.arrivals = s.arrivals;
    ctx.burst_factor = s.burst_factor;
    ctx.jitter_frac = s.jitter_frac;
    for (const auto& name : mac::registered_protocols()) {
      auto model = mac::make_model(name, ctx);
      ASSERT_TRUE(model.ok()) << name;
      expect_batch_parity(**model,
                          std::string(name) + " kV2/" + s.label);
    }
  }
}

TEST(MacBatchParity, KV2CatalogSampleContexts) {
  // Reconfigured deployments (density/depth/fs sweeps) shift the per-ring
  // rates the queueing kernels fold over; kernel parity must survive all
  // of them, not just the paper calibration.
  const auto scenarios =
      catalog::Catalog::builtin().expand_all(catalog::kDefaultSeed, 1);
  ASSERT_FALSE(scenarios.empty());
  for (const auto& sc : scenarios) {
    mac::ModelContext ctx = sc.scenario.context;
    ctx.model_version = mac::ModelVersion::kV2Queueing;
    ctx.arrivals = net::ArrivalProcess::kBursty;
    ctx.burst_factor = 4.0;
    for (const auto& name : mac::paper_protocols()) {
      auto model = mac::make_model(name, ctx);
      if (!model.ok()) continue;  // not every protocol fits every context
      expect_batch_parity(**model, sc.id() + "/" + name + " kV2");
    }
  }
}

TEST(MacBatchParity, CatalogSampleContexts) {
  // One scenario per built-in family: density/depth/traffic/radio
  // variations reconfigure every model (frame lengths, cycle floors, wake
  // floors), so kernel invariants are exercised away from the paper
  // calibration.
  const auto scenarios =
      catalog::Catalog::builtin().expand_all(catalog::kDefaultSeed, 1);
  ASSERT_FALSE(scenarios.empty());
  for (const auto& sc : scenarios) {
    for (const auto& name : mac::registered_protocols()) {
      auto model = mac::make_model(name, sc.scenario.context);
      if (!model.ok()) continue;  // not every protocol fits every context
      expect_batch_parity(**model, sc.id() + "/" + name);
    }
  }
}

TEST(MacBatchParity, MemoizedDecoratorMatchesAndCaches) {
  const mac::ModelContext ctx;
  for (const auto& name : mac::paper_protocols()) {
    auto inner = mac::make_model(name, ctx).take();
    mac::MemoizedMacModel memo(*inner);
    expect_batch_parity(memo, name + " (memo)");
    EXPECT_GT(memo.misses(), 0u);
    // A second pass over the same points is served from the cache with
    // identical values.
    const auto points = sample_points(memo, 9, 0);
    std::vector<double> xs;
    for (const auto& p : points) xs.insert(xs.end(), p.begin(), p.end());
    std::vector<double> e1(points.size()), e2(points.size());
    memo.evaluate_batch(xs.data(), points.size(), e1.data(), nullptr,
                        nullptr);
    const std::size_t hits_before = memo.hits();
    memo.evaluate_batch(xs.data(), points.size(), e2.data(), nullptr,
                        nullptr);
    EXPECT_GE(memo.hits(), hits_before + points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      EXPECT_TRUE(bits_eq(e1[i], e2[i]));
    }
  }
}

TEST(MacBatchParity, GridRefineScalarVsModelBatchOracle) {
  // End-to-end solver parity: the zooming grid over a model-backed block
  // oracle returns the same x/value/evaluations as over the scalar
  // oracle, for each paper model and each metric.
  const mac::ModelContext ctx;
  for (const auto& name : mac::paper_protocols()) {
    auto model = mac::make_model(name, ctx).take();
    const opt::Box box(model->params().lower(), model->params().upper());
    const opt::GridOptions opts{.points_per_dim = 65, .rounds = 6,
                                .zoom = 0.15};

    struct Metric {
      const char* label;
      int which;  // 0 energy, 1 latency, 2 margin (negated: maximise)
    };
    for (const Metric& metric :
         {Metric{"energy", 0}, Metric{"latency", 1}, Metric{"margin", 2}}) {
      opt::Objective scalar = [&model, metric](const std::vector<double>& x) {
        switch (metric.which) {
          case 0: return model->energy(x);
          case 1: return model->latency(x);
          default: return -model->feasibility_margin(x);
        }
      };
      opt::BatchObjective batch = [&model, metric](const opt::PointBlock& b,
                                                   double* v) {
        model->evaluate_batch(b.xs, b.n, metric.which == 0 ? v : nullptr,
                              metric.which == 1 ? v : nullptr,
                              metric.which == 2 ? v : nullptr);
        if (metric.which == 2) {
          for (std::size_t i = 0; i < b.n; ++i) v[i] = -v[i];
        }
      };
      auto rs = opt::grid_refine_min(scalar, box, opts);
      auto rb = opt::grid_refine_min(batch, box, opts);
      ASSERT_EQ(rs.x.size(), rb.x.size()) << name << " " << metric.label;
      for (std::size_t i = 0; i < rs.x.size(); ++i) {
        EXPECT_TRUE(bits_eq(rs.x[i], rb.x[i]))
            << name << " " << metric.label << " x[" << i << "]";
      }
      EXPECT_TRUE(bits_eq(rs.value, rb.value)) << name << " " << metric.label;
      EXPECT_EQ(rs.evaluations, rb.evaluations)
          << name << " " << metric.label;
    }
  }
}

TEST(MacBatchParity, EnvelopeBatchFenceMatchesScalarFence) {
  // core::protocol_envelope runs the batched fence (margins over the
  // block, raw metric only on feasible lanes); a hand-built scalar fence
  // over the same lattice family must land on bit-identical minima.
  const mac::ModelContext ctx;
  const opt::GridOptions grid_opts{.points_per_dim = 65, .rounds = 8,
                                   .zoom = 0.15};
  for (const auto& name : mac::registered_protocols()) {
    auto model = mac::make_model(name, ctx).take();
    const auto env = core::protocol_envelope(*model);
    const opt::Box box(model->params().lower(), model->params().upper());
    auto scalar_fenced = [&model](auto metric) {
      return [&model, metric](const std::vector<double>& x) {
        if (model->feasibility_margin(x) <= 0.0) return kInf;
        return metric(x);
      };
    };
    auto e = opt::grid_refine_min(
        scalar_fenced([&model](const std::vector<double>& x) {
          return model->energy(x);
        }),
        box, grid_opts);
    auto l = opt::grid_refine_min(
        scalar_fenced([&model](const std::vector<double>& x) {
          return model->latency(x);
        }),
        box, grid_opts);
    EXPECT_TRUE(bits_eq(env.e_min, e.value)) << name << " e_min";
    EXPECT_TRUE(bits_eq(env.l_min, l.value)) << name << " l_min";
  }
}

}  // namespace
}  // namespace edb
