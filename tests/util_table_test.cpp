#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace edb {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"col", "x"});
  t.row(std::vector<std::string>{"a", "1"});
  t.row(std::vector<std::string>{"longer", "2"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  // Header line, separator, two rows.
  EXPECT_NE(s.find("col     x"), std::string::npos);
  EXPECT_NE(s.find("longer  2"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, DoubleRowsRespectPrecision) {
  Table t({"v"});
  t.row(std::vector<double>{0.123456789}, 3);
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("0.123"), std::string::npos);
  EXPECT_EQ(out.str().find("0.1234"), std::string::npos);
}

TEST(Table, CountsRows) {
  Table t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.row(std::vector<std::string>{"x"});
  t.row(std::vector<std::string>{"y"});
  EXPECT_EQ(t.num_rows(), 2u);
}

}  // namespace
}  // namespace edb
