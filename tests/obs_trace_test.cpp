// Span tracer contract: spans record only while enabled, events carry
// plausible timing and thread ids, and the Chrome JSON export is
// well-formed trace-event JSON (the shape Perfetto loads).
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace edb::obs {
namespace {

// The tracer state is process-global; serialize every test through this
// fixture so parallel gtest shuffling cannot interleave clears.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::set_enabled(false);
    Tracer::clear();
  }
  void TearDown() override {
    Tracer::set_enabled(false);
    Tracer::clear();
  }
};

TEST_F(TracerTest, DisabledSpansRecordNothing) {
  {
    Span s("should-not-appear");
  }
  EXPECT_TRUE(Tracer::collect().empty());
}

TEST_F(TracerTest, EnabledSpansRecordNameAndDuration) {
  Tracer::set_enabled(true);
  {
    Span s("unit-span");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  Tracer::set_enabled(false);
  const auto events = Tracer::collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "unit-span");
  EXPECT_GE(events[0].dur_ns, 1'000'000u);  // slept ~2 ms
  EXPECT_GT(events[0].tid, 0u);
}

TEST_F(TracerTest, NestedSpansBothRecord) {
  Tracer::set_enabled(true);
  {
    Span outer("outer");
    {
      Span inner("inner");
    }
  }
  Tracer::set_enabled(false);
  const auto events = Tracer::collect();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start: outer opened first.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  // The inner span nests inside the outer's window.
  EXPECT_GE(events[1].start_ns, events[0].start_ns);
  EXPECT_LE(events[1].start_ns + events[1].dur_ns,
            events[0].start_ns + events[0].dur_ns);
}

TEST_F(TracerTest, SpansFromWorkerThreadsCarryDistinctTids) {
  Tracer::set_enabled(true);
  std::thread a([] { Span s("worker-a"); });
  std::thread b([] { Span s("worker-b"); });
  a.join();
  b.join();
  Tracer::set_enabled(false);
  const auto events = Tracer::collect();  // rings outlive their threads
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST_F(TracerTest, ClearDropsBufferedEvents) {
  Tracer::set_enabled(true);
  {
    Span s("to-be-dropped");
  }
  Tracer::clear();
  EXPECT_TRUE(Tracer::collect().empty());
}

TEST_F(TracerTest, RingBoundsMemory) {
  Tracer::set_enabled(true);
  for (std::size_t i = 0; i < kRingCapacity + 100; ++i) {
    Span s("ring-span");
  }
  Tracer::set_enabled(false);
  EXPECT_EQ(Tracer::collect().size(), kRingCapacity);
}

TEST_F(TracerTest, ChromeJsonIsWellFormedTraceEventJson) {
  Tracer::set_enabled(true);
  {
    Span s("json-span");
  }
  Tracer::set_enabled(false);
  const std::string json = Tracer::chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"json-span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  // Balanced braces/brackets: a cheap structural well-formedness check
  // (the CI obs leg loads a real capture with a JSON parser).
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (char c : json) {
    if (c == '"') in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(TracerTest, EmptyTraceStillExportsValidSkeleton) {
  const std::string json = Tracer::chrome_json();
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_EQ(json.find("\"name\""), std::string::npos);
}

}  // namespace
}  // namespace edb::obs
