// EnergyDelayGame mechanics: (P1), (P2), (P4) on the three paper protocols,
// cross-validated against brute-force oracles over the 1-D parameter boxes.
#include "core/game_framework.h"

#include <gtest/gtest.h>

#include <memory>

#include "mac/registry.h"
#include "util/math.h"

namespace edb::core {
namespace {

class FrameworkTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    scenario_ = Scenario::paper_default();
    model_ = mac::make_model(GetParam(), scenario_.context).take();
  }

  // Brute-force oracle: dense scan of the (1-D) box.
  template <typename Score>
  std::vector<double> scan_best(Score score) const {
    const auto lo = model_->params().lower();
    const auto hi = model_->params().upper();
    double best = kInf;
    std::vector<double> best_x = {lo[0]};
    for (int i = 0; i <= 200000; ++i) {
      std::vector<double> x{lo[0] + (hi[0] - lo[0]) * i / 200000.0};
      const double s = score(x);
      if (s < best) {
        best = s;
        best_x = x;
      }
    }
    return best_x;
  }

  Scenario scenario_;
  std::unique_ptr<mac::AnalyticMacModel> model_;
};

TEST_P(FrameworkTest, P1MatchesBruteForce) {
  EnergyDelayGame game(*model_, scenario_.requirements);
  auto p1 = game.solve_p1();
  ASSERT_TRUE(p1.ok()) << GetParam();

  const double lmax = scenario_.requirements.l_max;
  auto oracle = scan_best([&](const std::vector<double>& x) {
    if (model_->latency(x) > lmax || !model_->feasible(x)) return kInf;
    return model_->energy(x);
  });
  EXPECT_LT(rel_diff(p1->energy, model_->energy(oracle)), 1e-3)
      << GetParam();
  EXPECT_LE(p1->latency, lmax * (1 + 1e-6));
  EXPECT_TRUE(model_->feasible(p1->x));
}

TEST_P(FrameworkTest, P2MatchesBruteForce) {
  EnergyDelayGame game(*model_, scenario_.requirements);
  auto p2 = game.solve_p2();
  ASSERT_TRUE(p2.ok()) << GetParam();

  const double budget = scenario_.requirements.e_budget;
  auto oracle = scan_best([&](const std::vector<double>& x) {
    if (model_->energy(x) > budget || !model_->feasible(x)) return kInf;
    return model_->latency(x);
  });
  EXPECT_LT(rel_diff(p2->latency, model_->latency(oracle)), 1e-3)
      << GetParam();
  EXPECT_LE(p2->energy, budget * (1 + 1e-6));
}

TEST_P(FrameworkTest, NbsMaximisesTheNashProduct) {
  EnergyDelayGame game(*model_, scenario_.requirements);
  auto out = game.solve();
  ASSERT_TRUE(out.ok()) << GetParam();

  const double ew = out->e_worst();
  const double lw = out->l_worst();
  // Oracle: maximise the product over the dense scan.
  auto oracle = scan_best([&](const std::vector<double>& x) {
    const double e = model_->energy(x);
    const double l = model_->latency(x);
    if (e > std::min(ew, scenario_.requirements.e_budget) ||
        l > std::min(lw, scenario_.requirements.l_max) ||
        !model_->feasible(x)) {
      return kInf;
    }
    return -(ew - e) * (lw - l);
  });
  const double oracle_product = (ew - model_->energy(oracle)) *
                                (lw - model_->latency(oracle));
  EXPECT_GE(out->nash_product, oracle_product * (1 - 1e-3)) << GetParam();
}

TEST_P(FrameworkTest, AgreementIsBetweenTheTwoCorners) {
  EnergyDelayGame game(*model_, scenario_.requirements);
  auto out = game.solve().take();
  // E* in [Ebest, Eworst], L* in [Lbest, Lworst] (up to solver tolerance).
  EXPECT_GE(out.nbs.energy, out.e_best() * (1 - 1e-6));
  EXPECT_LE(out.nbs.energy, out.e_worst() * (1 + 1e-6));
  EXPECT_GE(out.nbs.latency, out.l_best() * (1 - 1e-6));
  EXPECT_LE(out.nbs.latency, out.l_worst() * (1 + 1e-6));
}

TEST_P(FrameworkTest, AgreementRespectsApplicationRequirements) {
  EnergyDelayGame game(*model_, scenario_.requirements);
  auto out = game.solve().take();
  EXPECT_LE(out.nbs.energy, scenario_.requirements.e_budget * (1 + 1e-6));
  EXPECT_LE(out.nbs.latency, scenario_.requirements.l_max * (1 + 1e-6));
  EXPECT_TRUE(model_->feasible(out.nbs.x));
}

TEST_P(FrameworkTest, GainRatiosAreWithinUnitInterval) {
  EnergyDelayGame game(*model_, scenario_.requirements);
  auto out = game.solve().take();
  EXPECT_GE(out.energy_gain_ratio(), -1e-6);
  EXPECT_LE(out.energy_gain_ratio(), 1.0 + 1e-6);
  EXPECT_GE(out.latency_gain_ratio(), -1e-6);
  EXPECT_LE(out.latency_gain_ratio(), 1.0 + 1e-6);
}

TEST_P(FrameworkTest, FrontierIsMonotoneTradeoff) {
  EnergyDelayGame game(*model_, scenario_.requirements);
  auto front = game.frontier(256);
  ASSERT_GE(front.size(), 10u) << GetParam();
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].f1, front[i - 1].f1);  // energy ascending
    EXPECT_LT(front[i].f2, front[i - 1].f2);  // latency descending
  }
}

INSTANTIATE_TEST_SUITE_P(PaperProtocols, FrameworkTest,
                         ::testing::Values("X-MAC", "DMAC", "LMAC"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(FrameworkEdgeCases, ImpossibleDelayBoundIsInfeasible) {
  Scenario s = Scenario::paper_default();
  s.requirements.l_max = 0.01;  // below any protocol's floor
  auto model = mac::make_model("X-MAC", s.context).take();
  EnergyDelayGame game(*model, s.requirements);
  auto p1 = game.solve_p1();
  ASSERT_FALSE(p1.ok());
  EXPECT_EQ(p1.error().code, ErrorCode::kInfeasible);
}

TEST(FrameworkEdgeCases, ImpossibleBudgetIsInfeasible) {
  Scenario s = Scenario::paper_default();
  s.requirements.e_budget = 1e-4;  // below any protocol's floor
  auto model = mac::make_model("LMAC", s.context).take();
  EnergyDelayGame game(*model, s.requirements);
  auto p2 = game.solve_p2();
  ASSERT_FALSE(p2.ok());
  EXPECT_EQ(p2.error().code, ErrorCode::kInfeasible);
}

TEST(FrameworkEdgeCases, LmacSmallBudgetAtPaperLmaxIsInfeasible) {
  // The documented deviation (EXPERIMENTS.md): our LMAC calibration cannot
  // meet Ebudget <= 0.03 J within Lmax = 6 s.
  Scenario s = Scenario::paper_default();
  s.requirements.e_budget = 0.01;
  auto model = mac::make_model("LMAC", s.context).take();
  EnergyDelayGame game(*model, s.requirements);
  auto p2 = game.solve_p2();
  // P2 alone is solvable (no delay constraint), but the agreement is not.
  ASSERT_TRUE(p2.ok());
  EXPECT_GT(p2->latency, s.requirements.l_max);
  auto out = game.solve();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, ErrorCode::kInfeasible);
}

}  // namespace
}  // namespace edb::core
