#include "core/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/memo.h"
#include "mac/registry.h"

namespace edb::core {
namespace {

EngineOptions sequential_opts(bool warm, bool memo) {
  return EngineOptions{
      .threads = 1, .parallel = false, .warm_start = warm, .memoize = memo};
}

EngineOptions parallel_opts(int threads, bool warm, bool memo) {
  return EngineOptions{.threads = threads,
                       .parallel = true,
                       .warm_start = warm,
                       .memoize = memo};
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : scenario_(Scenario::paper_default()) {
    // X-MAC is fully feasible over the fig. 1 range; LMAC has an
    // infeasible prefix, which exercises the chain's frontier search.
    for (const char* name : {"X-MAC", "LMAC"}) {
      models_.push_back(mac::make_model(name, scenario_.context).take());
      jobs_.push_back(SweepJob{models_.back().get(), scenario_.requirements,
                               SweepKind::kLmax,
                               paper_sweep_values(SweepKind::kLmax)});
    }
  }

  static void expect_identical(const SweepResult& a, const SweepResult& b) {
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
      ASSERT_EQ(a.cells[i].feasible(), b.cells[i].feasible())
          << a.protocol << " cell " << i;
      if (!a.cells[i].feasible()) {
        // Same engine configuration on both sides: even the inherited
        // infeasible reasons must match.
        EXPECT_EQ(a.cells[i].infeasible_reason, b.cells[i].infeasible_reason)
            << a.protocol << " cell " << i;
        continue;
      }
      const auto& oa = *a.cells[i].outcome;
      const auto& ob = *b.cells[i].outcome;
      // Bit-identical, not merely close: executors only decide when a cell
      // is computed, never what goes into it.
      EXPECT_EQ(oa.nbs.energy, ob.nbs.energy) << a.protocol << " cell " << i;
      EXPECT_EQ(oa.nbs.latency, ob.nbs.latency) << a.protocol << " cell "
                                                << i;
      EXPECT_EQ(oa.p1.energy, ob.p1.energy);
      EXPECT_EQ(oa.p2.latency, ob.p2.latency);
      EXPECT_EQ(oa.nash_product, ob.nash_product);
    }
  }

  Scenario scenario_;
  std::vector<std::unique_ptr<mac::AnalyticMacModel>> models_;
  std::vector<SweepJob> jobs_;
};

TEST_F(EngineTest, ParallelSweepMatchesSequentialCellForCell) {
  ScenarioEngine sequential(sequential_opts(true, true));
  ScenarioEngine parallel(parallel_opts(4, true, true));
  auto seq = sequential.run_sweeps(jobs_);
  auto par = parallel.run_sweeps(jobs_);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    expect_identical(seq[i], par[i]);
  }
}

TEST_F(EngineTest, ColdParallelCellsMatchSequential) {
  // Without warm start every cell is its own task; partitioning across
  // threads must still not change anything.
  ScenarioEngine sequential(sequential_opts(false, false));
  ScenarioEngine parallel(parallel_opts(3, false, false));
  auto seq = sequential.run_sweeps({jobs_[0]});
  auto par = parallel.run_sweeps({jobs_[0]});
  expect_identical(seq[0], par[0]);
}

TEST_F(EngineTest, WarmStartNoWorseNashProductThanCold) {
  ScenarioEngine warm(sequential_opts(true, true));
  ScenarioEngine cold(sequential_opts(false, false));
  for (const auto& job : jobs_) {
    auto w = warm.run_sweep(job);
    auto c = cold.run_sweep(job);
    ASSERT_EQ(w.cells.size(), c.cells.size());
    for (std::size_t i = 0; i < w.cells.size(); ++i) {
      ASSERT_EQ(w.cells[i].feasible(), c.cells[i].feasible())
          << w.protocol << " cell " << i;
      if (!w.cells[i].feasible()) continue;
      EXPECT_GE(w.cells[i].outcome->nash_product,
                c.cells[i].outcome->nash_product * (1.0 - 1e-9))
          << w.protocol << " cell " << i;
    }
  }
}

TEST_F(EngineTest, LegacyRunSweepMatchesEngine) {
  auto legacy = run_sweep(*models_[0], scenario_.requirements,
                          SweepKind::kLmax,
                          paper_sweep_values(SweepKind::kLmax));
  ScenarioEngine cold(sequential_opts(false, false));
  auto engine = cold.run_sweep(jobs_[0]);
  expect_identical(legacy, engine);
}

TEST_F(EngineTest, SolveBatchMatchesDirectSolves) {
  std::vector<SolveJob> jobs;
  for (const auto& m : models_) {
    jobs.push_back(SolveJob{m.get(), scenario_.requirements});
  }
  ScenarioEngine engine(parallel_opts(2, true, true));
  auto batch = engine.solve_batch(jobs);
  ASSERT_EQ(batch.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EnergyDelayGame game(*models_[i], scenario_.requirements);
    auto direct = game.solve();
    ASSERT_EQ(batch[i].ok(), direct.ok());
    if (!direct.ok()) continue;
    EXPECT_EQ(batch[i]->nbs.energy, direct->nbs.energy);
    EXPECT_EQ(batch[i]->nbs.latency, direct->nbs.latency);
  }
}

TEST_F(EngineTest, BudgetSweepFrontierSearchMatchesCold) {
  // The kBudget kind exercises the monotone frontier search on the other
  // requirement axis.
  SweepJob job{models_[1].get(), scenario_.requirements, SweepKind::kBudget,
               paper_sweep_values(SweepKind::kBudget)};
  ScenarioEngine warm(sequential_opts(true, true));
  ScenarioEngine cold(sequential_opts(false, false));
  auto w = warm.run_sweep(job);
  auto c = cold.run_sweep(job);
  ASSERT_EQ(w.cells.size(), c.cells.size());
  for (std::size_t i = 0; i < w.cells.size(); ++i) {
    EXPECT_EQ(w.cells[i].feasible(), c.cells[i].feasible())
        << "cell " << i;
  }
}

TEST_F(EngineTest, UntrustedSeedMatchesColdSolve) {
  // An untrusted seed only joins the penalty multistart; the macro-margin
  // rule in dual_solve keeps the result equal to the unseeded cold solve.
  EnergyDelayGame game(*models_[0], scenario_.requirements);
  auto cold = game.solve();
  ASSERT_TRUE(cold.ok());

  SolveHints hints{cold->p1.x, cold->p2.x, cold->nbs.x, /*trusted=*/false};
  auto seeded = game.solve(hints);
  ASSERT_TRUE(seeded.ok());
  EXPECT_EQ(seeded->nbs.energy, cold->nbs.energy);
  EXPECT_EQ(seeded->nbs.latency, cold->nbs.latency);
  EXPECT_EQ(seeded->nash_product, cold->nash_product);
}

TEST(MemoizedModelTest, TransparentAndCaching) {
  Scenario scenario = Scenario::paper_default();
  auto model = mac::make_model("X-MAC", scenario.context).take();
  mac::MemoizedMacModel memo(*model);

  const auto x = model->params().midpoint();
  EXPECT_EQ(memo.energy(x), model->energy(x));
  EXPECT_EQ(memo.latency(x), model->latency(x));
  EXPECT_EQ(memo.feasibility_margin(x), model->feasibility_margin(x));
  const std::size_t misses = memo.misses();
  EXPECT_EQ(memo.hits(), 0u);

  // Same point again: all hits, same values.
  EXPECT_EQ(memo.energy(x), model->energy(x));
  EXPECT_EQ(memo.latency(x), model->latency(x));
  EXPECT_EQ(memo.feasibility_margin(x), model->feasibility_margin(x));
  EXPECT_EQ(memo.misses(), misses);
  EXPECT_EQ(memo.hits(), 3u);
}

}  // namespace
}  // namespace edb::core
