#include "core/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/memo.h"
#include "mac/registry.h"

namespace edb::core {
namespace {

EngineOptions sequential_opts(bool warm, bool memo) {
  return EngineOptions{
      .threads = 1, .parallel = false, .warm_start = warm, .memoize = memo};
}

EngineOptions parallel_opts(int threads, bool warm, bool memo) {
  return EngineOptions{.threads = threads,
                       .parallel = true,
                       .warm_start = warm,
                       .memoize = memo};
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : scenario_(Scenario::paper_default()) {
    // X-MAC is fully feasible over the fig. 1 range; LMAC has an
    // infeasible prefix, which exercises the chain's frontier search.
    for (const char* name : {"X-MAC", "LMAC"}) {
      models_.push_back(mac::make_model(name, scenario_.context).take());
      jobs_.push_back(SweepJob{models_.back().get(), scenario_.requirements,
                               SweepKind::kLmax,
                               paper_sweep_values(SweepKind::kLmax)});
    }
  }

  static void expect_identical(const SweepResult& a, const SweepResult& b) {
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
      ASSERT_EQ(a.cells[i].feasible(), b.cells[i].feasible())
          << a.protocol << " cell " << i;
      if (!a.cells[i].feasible()) {
        // Same engine configuration on both sides: even the inherited
        // infeasible reasons must match.
        EXPECT_EQ(a.cells[i].infeasible_reason, b.cells[i].infeasible_reason)
            << a.protocol << " cell " << i;
        continue;
      }
      const auto& oa = *a.cells[i].outcome;
      const auto& ob = *b.cells[i].outcome;
      // Bit-identical, not merely close: executors only decide when a cell
      // is computed, never what goes into it.
      EXPECT_EQ(oa.nbs.energy, ob.nbs.energy) << a.protocol << " cell " << i;
      EXPECT_EQ(oa.nbs.latency, ob.nbs.latency) << a.protocol << " cell "
                                                << i;
      EXPECT_EQ(oa.p1.energy, ob.p1.energy);
      EXPECT_EQ(oa.p2.latency, ob.p2.latency);
      EXPECT_EQ(oa.nash_product, ob.nash_product);
    }
  }

  Scenario scenario_;
  std::vector<std::unique_ptr<mac::AnalyticMacModel>> models_;
  std::vector<SweepJob> jobs_;
};

TEST_F(EngineTest, ParallelSweepMatchesSequentialCellForCell) {
  ScenarioEngine sequential(sequential_opts(true, true));
  ScenarioEngine parallel(parallel_opts(4, true, true));
  auto seq = sequential.run_sweeps(jobs_);
  auto par = parallel.run_sweeps(jobs_);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    expect_identical(seq[i], par[i]);
  }
}

TEST_F(EngineTest, ColdParallelCellsMatchSequential) {
  // Without warm start every cell is its own task; partitioning across
  // threads must still not change anything.
  ScenarioEngine sequential(sequential_opts(false, false));
  ScenarioEngine parallel(parallel_opts(3, false, false));
  auto seq = sequential.run_sweeps({jobs_[0]});
  auto par = parallel.run_sweeps({jobs_[0]});
  expect_identical(seq[0], par[0]);
}

TEST_F(EngineTest, WarmStartNoWorseNashProductThanCold) {
  ScenarioEngine warm(sequential_opts(true, true));
  ScenarioEngine cold(sequential_opts(false, false));
  for (const auto& job : jobs_) {
    auto w = warm.run_sweep(job);
    auto c = cold.run_sweep(job);
    ASSERT_EQ(w.cells.size(), c.cells.size());
    for (std::size_t i = 0; i < w.cells.size(); ++i) {
      ASSERT_EQ(w.cells[i].feasible(), c.cells[i].feasible())
          << w.protocol << " cell " << i;
      if (!w.cells[i].feasible()) continue;
      EXPECT_GE(w.cells[i].outcome->nash_product,
                c.cells[i].outcome->nash_product * (1.0 - 1e-9))
          << w.protocol << " cell " << i;
    }
  }
}

TEST_F(EngineTest, LegacyRunSweepMatchesEngine) {
  auto legacy = run_sweep(*models_[0], scenario_.requirements,
                          SweepKind::kLmax,
                          paper_sweep_values(SweepKind::kLmax));
  ScenarioEngine cold(sequential_opts(false, false));
  auto engine = cold.run_sweep(jobs_[0]);
  expect_identical(legacy, engine);
}

TEST_F(EngineTest, SolveBatchMatchesDirectSolves) {
  std::vector<SolveJob> jobs;
  for (const auto& m : models_) {
    jobs.push_back(SolveJob{m.get(), scenario_.requirements});
  }
  ScenarioEngine engine(parallel_opts(2, true, true));
  auto batch = engine.solve_batch(jobs);
  ASSERT_EQ(batch.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EnergyDelayGame game(*models_[i], scenario_.requirements);
    auto direct = game.solve();
    ASSERT_EQ(batch[i].ok(), direct.ok());
    if (!direct.ok()) continue;
    EXPECT_EQ(batch[i]->nbs.energy, direct->nbs.energy);
    EXPECT_EQ(batch[i]->nbs.latency, direct->nbs.latency);
  }
}

TEST_F(EngineTest, BudgetSweepFrontierSearchMatchesCold) {
  // The kBudget kind exercises the monotone frontier search on the other
  // requirement axis.
  SweepJob job{models_[1].get(), scenario_.requirements, SweepKind::kBudget,
               paper_sweep_values(SweepKind::kBudget)};
  ScenarioEngine warm(sequential_opts(true, true));
  ScenarioEngine cold(sequential_opts(false, false));
  auto w = warm.run_sweep(job);
  auto c = cold.run_sweep(job);
  ASSERT_EQ(w.cells.size(), c.cells.size());
  for (std::size_t i = 0; i < w.cells.size(); ++i) {
    EXPECT_EQ(w.cells[i].feasible(), c.cells[i].feasible())
        << "cell " << i;
  }
}

TEST_F(EngineTest, UntrustedSeedMatchesColdSolve) {
  // An untrusted seed only joins the penalty multistart; the macro-margin
  // rule in dual_solve keeps the result equal to the unseeded cold solve.
  EnergyDelayGame game(*models_[0], scenario_.requirements);
  auto cold = game.solve();
  ASSERT_TRUE(cold.ok());

  SolveHints hints{cold->p1.x, cold->p2.x, cold->nbs.x, /*trusted=*/false};
  auto seeded = game.solve(hints);
  ASSERT_TRUE(seeded.ok());
  EXPECT_EQ(seeded->nbs.energy, cold->nbs.energy);
  EXPECT_EQ(seeded->nbs.latency, cold->nbs.latency);
  EXPECT_EQ(seeded->nash_product, cold->nash_product);
}

TEST_F(EngineTest, WarmChainInfeasibleReasonsMatchColdPerCell) {
  // LMAC has an infeasible prefix over a fine Lmax grid, so the warm
  // chain's frontier search leaves unprobed dead cells whose reasons are
  // derived from the protocol envelope rather than solved.  They must
  // still be byte-identical to the cold path's solver-produced strings.
  std::vector<double> values;
  for (int i = 0; i < 12; ++i) values.push_back(1.0 + 5.0 * i / 11.0);
  SweepJob job{models_[1].get(), scenario_.requirements, SweepKind::kLmax,
               values};
  ScenarioEngine warm(sequential_opts(true, true));
  ScenarioEngine cold(sequential_opts(false, false));
  auto w = warm.run_sweep(job);
  auto c = cold.run_sweep(job);
  ASSERT_EQ(w.cells.size(), c.cells.size());
  for (std::size_t i = 0; i < w.cells.size(); ++i) {
    ASSERT_EQ(w.cells[i].feasible(), c.cells[i].feasible()) << "cell " << i;
    EXPECT_EQ(w.cells[i].infeasible_reason, c.cells[i].infeasible_reason)
        << "cell " << i;
  }
}

TEST_F(EngineTest, AllInfeasibleSweepDerivesMixedReasons) {
  // A starvation budget makes every cell infeasible, but not for one
  // reason: tight-Lmax cells die at (P1) before the budget is even
  // consulted, the rest die at (P2).  The warm chain probes only the two
  // ends, so the middle cells' reasons are all derived — and must match
  // the cold path's cell for cell.
  AppRequirements req = scenario_.requirements;
  req.e_budget = 1e-4;
  // LMAC's envelope floor is l_min ~ 0.135 s: the first two cells sit
  // below it (P1 territory), the rest above (P2 territory).
  std::vector<double> values = {0.05, 0.1, 0.5, 1.5, 3.0, 4.5, 6.0};
  SweepJob job{models_[1].get(), req, SweepKind::kLmax, values};
  ScenarioEngine warm(sequential_opts(true, true));
  ScenarioEngine cold(sequential_opts(false, false));
  auto w = warm.run_sweep(job);
  auto c = cold.run_sweep(job);
  std::size_t p1_cells = 0, p2_cells = 0;
  for (std::size_t i = 0; i < w.cells.size(); ++i) {
    ASSERT_FALSE(c.cells[i].feasible()) << "cell " << i;
    ASSERT_FALSE(w.cells[i].feasible()) << "cell " << i;
    EXPECT_EQ(w.cells[i].infeasible_reason, c.cells[i].infeasible_reason)
        << "cell " << i;
    if (c.cells[i].infeasible_reason.find("(P1)") != std::string::npos) {
      ++p1_cells;
    }
    if (c.cells[i].infeasible_reason.find("(P2)") != std::string::npos) {
      ++p2_cells;
    }
  }
  // The scenario really exercises both failure modes.
  EXPECT_GT(p1_cells, 0u);
  EXPECT_GT(p2_cells, 0u);
}

TEST(PlanPointQueriesTest, GroupsBudgetSiblingsIntoSweeps) {
  Scenario scenario = Scenario::paper_default();
  auto xmac = mac::make_model("X-MAC", scenario.context).take();
  auto dmac = mac::make_model("DMAC", scenario.context).take();

  auto req_at = [&](double l_max, double budget) {
    AppRequirements r = scenario.requirements;
    r.l_max = l_max;
    r.e_budget = budget;
    return r;
  };
  std::vector<PointQuery> queries = {
      {xmac.get(), req_at(5.0, 0.06)},  // group A
      {dmac.get(), req_at(5.0, 0.06)},  // group B (other model)
      {xmac.get(), req_at(3.0, 0.06)},  // group A
      {xmac.get(), req_at(3.0, 0.05)},  // group C (other budget)
      {xmac.get(), req_at(5.0, 0.06)},  // duplicate of [0]
      {xmac.get(), req_at(4.0, 0.06), 0.7},  // group D (other alpha)
  };
  const SweepPlan plan = plan_point_queries(queries);
  ASSERT_EQ(plan.jobs.size(), 4u);
  ASSERT_EQ(plan.slots.size(), queries.size());

  // Group A: X-MAC at budget 0.06 with Lmax {3, 5}, ascending.
  EXPECT_EQ(plan.jobs[0].model, xmac.get());
  EXPECT_EQ(plan.jobs[0].kind, SweepKind::kLmax);
  EXPECT_EQ(plan.jobs[0].values, (std::vector<double>{3.0, 5.0}));
  EXPECT_EQ(plan.jobs[0].base.e_budget, 0.06);

  EXPECT_EQ(plan.jobs[1].model, dmac.get());
  EXPECT_EQ(plan.jobs[2].base.e_budget, 0.05);
  EXPECT_EQ(plan.jobs[3].alpha, 0.7);

  // Slots point every query at its cell; the duplicate shares one.
  EXPECT_EQ(plan.slots[0].job, 0u);
  EXPECT_EQ(plan.slots[0].cell, 1u);  // Lmax 5 is the second ascending value
  EXPECT_EQ(plan.slots[2].job, 0u);
  EXPECT_EQ(plan.slots[2].cell, 0u);
  EXPECT_EQ(plan.slots[4].job, plan.slots[0].job);
  EXPECT_EQ(plan.slots[4].cell, plan.slots[0].cell);
  EXPECT_EQ(plan.slots[1].job, 1u);
  EXPECT_EQ(plan.slots[3].job, 2u);
  EXPECT_EQ(plan.slots[5].job, 3u);
}

TEST(PlanPointQueriesTest, PlannedCellsSolveLikeAStandaloneSweep) {
  Scenario scenario = Scenario::paper_default();
  auto model = mac::make_model("X-MAC", scenario.context).take();
  std::vector<PointQuery> queries;
  for (double l : {4.0, 6.0, 5.0}) {
    AppRequirements r = scenario.requirements;
    r.l_max = l;
    queries.push_back(PointQuery{model.get(), r});
  }
  const SweepPlan plan = plan_point_queries(queries);
  ASSERT_EQ(plan.jobs.size(), 1u);

  ScenarioEngine engine(sequential_opts(true, true));
  auto results = engine.run_sweeps(plan.jobs);
  auto reference = run_sweep(*model, scenario.requirements, SweepKind::kLmax,
                             {4.0, 5.0, 6.0});
  ASSERT_EQ(results[0].cells.size(), reference.cells.size());
  for (std::size_t i = 0; i < reference.cells.size(); ++i) {
    ASSERT_TRUE(reference.cells[i].feasible());
    EXPECT_EQ(results[0].cells[i].outcome->nbs.energy,
              reference.cells[i].outcome->nbs.energy);
    EXPECT_EQ(results[0].cells[i].outcome->nbs.latency,
              reference.cells[i].outcome->nbs.latency);
  }
}

TEST(MemoizedModelTest, TransparentAndCaching) {
  Scenario scenario = Scenario::paper_default();
  auto model = mac::make_model("X-MAC", scenario.context).take();
  mac::MemoizedMacModel memo(*model);

  const auto x = model->params().midpoint();
  EXPECT_EQ(memo.energy(x), model->energy(x));
  EXPECT_EQ(memo.latency(x), model->latency(x));
  EXPECT_EQ(memo.feasibility_margin(x), model->feasibility_margin(x));
  const std::size_t misses = memo.misses();
  EXPECT_EQ(memo.hits(), 0u);

  // Same point again: all hits, same values.
  EXPECT_EQ(memo.energy(x), model->energy(x));
  EXPECT_EQ(memo.latency(x), model->latency(x));
  EXPECT_EQ(memo.feasibility_margin(x), model->feasibility_margin(x));
  EXPECT_EQ(memo.misses(), misses);
  EXPECT_EQ(memo.hits(), 3u);
}

}  // namespace
}  // namespace edb::core
